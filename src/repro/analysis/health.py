"""Credit-network health: liquidity, concentration, utilization, settlability.

Table II measures one binary counterfactual — *can payments still deliver
without market makers?* — but the interesting quantity is continuous: how
healthy is the credit network, and how fast does that health degrade as
intermediaries fail?  This module defines the four health dimensions the
cascade scenarios (:mod:`repro.chaos.cascade`) track round by round:

* **wallet liquidity** — the EUR-aggregated net balance distribution over
  user wallets (the Fig. 7(c) profile, summarized);
* **issuer concentration** — the share of all outstanding IOU value issued
  by the top-k debtors, the credit-fabric analogue of the 50/75/87 %
  offer-concentration finding;
* **trust-limit utilization** — how close the credit lines run to their
  declared limits (over-utilized lines are the ADL-style unwind's fuel);
* **settlability** — the fraction of sampled account pairs that can still
  settle a target amount through the live trust graph.

The settlability probe is deliberately *monotone under intermediary
removal*: a pair counts as settlable iff the exact max flow between the
endpoints (reverse residual edges, no hop bound) reaches the target
amount.  Ripple's bounded greedy planner (:func:`plan_payment`) is used
as a fast certificate — a complete plan is a feasible flow — but a greedy
miss falls back to the exact computation, so banning additional relayers
can only shrink the usable graph and therefore never *increases* the
settlable fraction (the property the hypothesis suite enforces).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.ledger.accounts import AccountID
from repro.ledger.currency import Currency, eur_value
from repro.ledger.state import LedgerState
from repro.payments.engine import FilteredTrustGraph
from repro.payments.graph import DUST, TrustGraph
from repro.payments.pathfinding import plan_payment

#: Utilization at or above this fraction marks a trust line over-extended.
OVERUTILIZED_THRESHOLD = 0.9

#: Default settlability-probe parameters (overridable per request).
DEFAULT_PAIR_SAMPLE = 200
DEFAULT_TARGET_AMOUNT = 10.0


@dataclass(frozen=True)
class LiquidityDistribution:
    """Summary of the EUR net-balance distribution over user wallets."""

    wallets: int
    total_eur: float
    mean_eur: float
    median_eur: float
    p90_eur: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "wallets": self.wallets,
            "total_eur": self.total_eur,
            "mean_eur": self.mean_eur,
            "median_eur": self.median_eur,
            "p90_eur": self.p90_eur,
        }


@dataclass(frozen=True)
class IssuerConcentration:
    """Share of all outstanding IOU value issued by the top-k debtors."""

    issuers: int
    outstanding_eur: float
    shares: Dict[int, float]

    def share_of_top(self, k: int) -> float:
        return self.shares.get(k, 0.0)

    def as_dict(self) -> Dict[str, float]:
        payload: Dict[str, float] = {
            "issuers": self.issuers,
            "outstanding_eur": self.outstanding_eur,
        }
        for k, share in sorted(self.shares.items()):
            payload[f"top{k}_share"] = share
        return payload


@dataclass(frozen=True)
class UtilizationProfile:
    """How close the credit lines run to their declared limits."""

    lines: int
    mean: float
    p90: float
    overextended: int
    threshold: float

    @property
    def overextended_fraction(self) -> float:
        return self.overextended / self.lines if self.lines else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "lines": self.lines,
            "mean": self.mean,
            "p90": self.p90,
            "overextended": self.overextended,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class SettlabilityProbe:
    """Fraction of sampled pairs that can settle the target amount."""

    pairs: int
    settlable: int
    amount: float

    @property
    def fraction(self) -> float:
        return self.settlable / self.pairs if self.pairs else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "pairs": self.pairs,
            "settlable": self.settlable,
            "amount": self.amount,
            "fraction": self.fraction,
        }


@dataclass(frozen=True)
class HealthReport:
    """One health snapshot of the credit network."""

    liquidity: LiquidityDistribution
    issuers: IssuerConcentration
    utilization: UtilizationProfile
    settlability: SettlabilityProbe

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            "liquidity": self.liquidity.as_dict(),
            "issuers": self.issuers.as_dict(),
            "utilization": self.utilization.as_dict(),
            "settlability": self.settlability.as_dict(),
        }


# Health dimensions -----------------------------------------------------------


def _wallet_balance_eur(state: LedgerState, account: AccountID) -> float:
    """Net credit − debt across currencies plus XRP, EUR-aggregated."""
    total = state.xrp_balance(account) / 10 ** 6 * eur_value(Currency("XRP"))
    for line in state.lines_trusted_by(account):
        total += line.balance.to_float() * eur_value(line.currency)
    for line in state.lines_trusting(account):
        total -= line.balance.to_float() * eur_value(line.currency)
    return float(total)


def liquidity_distribution(
    state: LedgerState, wallets: Sequence[AccountID]
) -> LiquidityDistribution:
    """Summarize the EUR net balances of ``wallets`` (usually the users)."""
    if not wallets:
        return LiquidityDistribution(0, 0.0, 0.0, 0.0, 0.0)
    balances = np.array(
        [_wallet_balance_eur(state, account) for account in wallets]
    )
    return LiquidityDistribution(
        wallets=len(wallets),
        total_eur=float(balances.sum()),
        mean_eur=float(balances.mean()),
        median_eur=float(np.median(balances)),
        p90_eur=float(np.percentile(balances, 90)),
    )


def issuer_concentration(
    state: LedgerState, top_ks: Iterable[int] = (1, 5, 10)
) -> IssuerConcentration:
    """Outstanding-IOU shares of the top-k issuers (debtors).

    A trust line's balance is debt of the trustee towards the truster, so
    the trustee is the issuer of that IOU value.  Gateways dominate by
    construction; the shares quantify *how much*.
    """
    outstanding: Dict[AccountID, float] = {}
    for line in state.iter_trustlines():
        value = line.balance.to_float() * eur_value(line.currency)
        if value > 0.0:
            outstanding[line.trustee] = outstanding.get(line.trustee, 0.0) + value
    ranked = sorted(outstanding.values(), reverse=True)
    total = sum(ranked)
    shares = {
        k: (sum(ranked[:k]) / total if total else 0.0) for k in top_ks
    }
    return IssuerConcentration(
        issuers=len(ranked), outstanding_eur=float(total), shares=shares
    )


def utilization_profile(
    state: LedgerState, threshold: float = OVERUTILIZED_THRESHOLD
) -> UtilizationProfile:
    """Balance/limit utilization over every line with a positive limit."""
    utilizations: List[float] = []
    for line in state.iter_trustlines():
        limit = line.limit.to_float()
        if limit <= 0.0:
            continue
        utilizations.append(min(1.0, line.balance.to_float() / limit))
    if not utilizations:
        return UtilizationProfile(0, 0.0, 0.0, 0, threshold)
    values = np.array(utilizations)
    return UtilizationProfile(
        lines=len(utilizations),
        mean=float(values.mean()),
        p90=float(np.percentile(values, 90)),
        overextended=int((values >= threshold).sum()),
        threshold=threshold,
    )


# Settlability ----------------------------------------------------------------


def _exact_max_flow(
    graph: TrustGraph,
    source: AccountID,
    target: AccountID,
    amount: float,
    max_augmentations: int = 10_000,
) -> float:
    """Exact max flow with reverse residual edges, stopped at ``amount``.

    Unlike the bounded greedy planner (and :func:`repro.payments.liquidity
    .max_flow`, which augments along hop-bounded paths without residual
    back-edges), this is true Edmonds–Karp over the relay-filtered credit
    graph: banning extra relayers can only remove edges, so the value is
    monotone non-increasing under intermediary removal — the property the
    settlability probe is built on.
    """
    # Materialize the usable credit graph once: outgoing edges exist only
    # for accounts allowed to *originate* a hop (the source, or any account
    # that relays).  The graph is small (hundreds of accounts) and the
    # probe never mutates state, so a full pass is cheap.
    capacity: Dict[Tuple[AccountID, AccountID], float] = {}
    neighbours: Dict[AccountID, List[AccountID]] = {}
    for account in graph.state.accounts:
        if account != source and not graph.can_relay(account):
            continue
        for payee, cap in graph.successor_pairs(account):
            if cap <= DUST or (account, payee) in capacity:
                continue
            capacity[(account, payee)] = cap
            neighbours.setdefault(account, []).append(payee)
            # The reverse residual arc becomes usable once flow is pushed.
            reverse = neighbours.setdefault(payee, [])
            if account not in reverse:
                reverse.append(account)

    flow: Dict[Tuple[AccountID, AccountID], float] = {}
    total = 0.0
    for _ in range(max_augmentations):
        if total >= amount * (1.0 - 1e-9):
            break
        # BFS over residual capacities (forward remainder + reverse flow).
        parents: Dict[AccountID, AccountID] = {source: source}
        queue = deque([source])
        found = False
        while queue and not found:
            node = queue.popleft()
            for nxt in neighbours.get(node, ()):
                if nxt in parents:
                    continue
                residual = (
                    capacity.get((node, nxt), 0.0)
                    - flow.get((node, nxt), 0.0)
                    + flow.get((nxt, node), 0.0)
                )
                if residual <= DUST:
                    continue
                parents[nxt] = node
                if nxt == target:
                    found = True
                    break
                queue.append(nxt)
        if not found:
            break
        # Bottleneck along the parent chain, then apply it.
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        bottleneck = float("inf")
        for a, b in zip(path, path[1:]):
            residual = (
                capacity.get((a, b), 0.0)
                - flow.get((a, b), 0.0)
                + flow.get((b, a), 0.0)
            )
            bottleneck = min(bottleneck, residual)
        if bottleneck <= DUST:
            break
        bottleneck = min(bottleneck, amount - total)
        for a, b in zip(path, path[1:]):
            back = flow.get((b, a), 0.0)
            if back > DUST:  # cancel reverse flow first
                cancelled = min(back, bottleneck)
                flow[(b, a)] = back - cancelled
                remainder = bottleneck - cancelled
                if remainder > 0.0:
                    flow[(a, b)] = flow.get((a, b), 0.0) + remainder
            else:
                flow[(a, b)] = flow.get((a, b), 0.0) + bottleneck
        total += bottleneck
    return total


def pair_settles(
    state: LedgerState,
    source: AccountID,
    target: AccountID,
    currency: Currency,
    amount: float,
    banned: Optional[Set[AccountID]] = None,
) -> bool:
    """Can ``source`` deliver ``amount`` of ``currency`` to ``target``?

    Greedy fast path first: a complete Ripple plan is a feasible flow, so
    it certifies settlability.  A greedy miss is *not* a certificate of
    failure (the planner has no residual back-edges and bounds hops), so
    it falls back to the exact max flow — making the answer equivalent to
    ``max_flow >= amount`` and therefore monotone under relayer removal.
    """
    graph: TrustGraph = FilteredTrustGraph(
        state, currency, banned or set(), source, target
    )
    plan = plan_payment(graph, source, target, amount)
    if plan.is_complete_for(amount):
        return True
    return _exact_max_flow(graph, source, target, amount) >= amount * (
        1.0 - 1e-6
    )


def sample_pairs(
    state: LedgerState,
    wallets: Sequence[AccountID],
    pairs: int,
    seed: int,
) -> List[Tuple[AccountID, AccountID, Currency]]:
    """Deterministic (sender, receiver, currency) probe triples.

    The currency is the receiver's deepest incoming credit line (largest
    EUR-valued limit among the lines the receiver *extends*, because a
    receiver holds value as IOUs of issuers it trusts); ties break on the
    currency code so the sample is stable across runs and processes.
    """
    triples: List[Tuple[AccountID, AccountID, Currency]] = []
    if len(wallets) < 2:
        return triples
    rng = np.random.default_rng(seed)
    attempts = 0
    while len(triples) < pairs and attempts < pairs * 10:
        attempts += 1
        i, j = rng.integers(0, len(wallets), size=2)
        if i == j:
            continue
        source, target = wallets[int(i)], wallets[int(j)]
        best: Optional[Tuple[float, str]] = None
        for line in state.lines_trusted_by(target):
            depth = line.limit.to_float() * eur_value(line.currency)
            key = (depth, line.currency.code)
            # Highest depth wins; on equal depth the *smaller* code wins.
            if best is None or depth > best[0] or (
                depth == best[0] and line.currency.code < best[1]
            ):
                best = key
        if best is None:
            continue
        triples.append((source, target, Currency(best[1])))
    return triples


def settlability_probe(
    state: LedgerState,
    wallets: Sequence[AccountID],
    pairs: int = DEFAULT_PAIR_SAMPLE,
    amount: float = DEFAULT_TARGET_AMOUNT,
    seed: int = 0,
    banned: Optional[Set[AccountID]] = None,
) -> SettlabilityProbe:
    """Sample pairs and count the ones that can settle ``amount``."""
    outcomes = settlability_outcomes(
        state, wallets, pairs=pairs, amount=amount, seed=seed, banned=banned
    )
    return SettlabilityProbe(
        pairs=len(outcomes), settlable=sum(outcomes), amount=amount
    )


def settlability_outcomes(
    state: LedgerState,
    wallets: Sequence[AccountID],
    pairs: int = DEFAULT_PAIR_SAMPLE,
    amount: float = DEFAULT_TARGET_AMOUNT,
    seed: int = 0,
    banned: Optional[Set[AccountID]] = None,
) -> List[bool]:
    """Per-pair settlability outcomes, in sample order (shardable tally)."""
    return [
        pair_settles(state, source, target, currency, amount, banned=banned)
        for source, target, currency in sample_pairs(state, wallets, pairs, seed)
    ]


def health_report(
    state: LedgerState,
    wallets: Sequence[AccountID],
    pairs: int = DEFAULT_PAIR_SAMPLE,
    amount: float = DEFAULT_TARGET_AMOUNT,
    seed: int = 0,
    banned: Optional[Set[AccountID]] = None,
) -> HealthReport:
    """The full four-dimension health snapshot."""
    return HealthReport(
        liquidity=liquidity_distribution(state, wallets),
        issuers=issuer_concentration(state),
        utilization=utilization_profile(state),
        settlability=settlability_probe(
            state, wallets, pairs=pairs, amount=amount, seed=seed, banned=banned
        ),
    )


def render_health(report: HealthReport, title: str = "Credit-network health") -> str:
    """Terminal rendering of one health snapshot (stable formatting)."""
    liquidity = report.liquidity
    issuers = report.issuers
    utilization = report.utilization
    probe = report.settlability
    lines = [
        title,
        "",
        "Wallet liquidity (EUR net balances over user wallets)",
        f"  wallets {liquidity.wallets:5d}   total {liquidity.total_eur:15,.2f}"
        f"   mean {liquidity.mean_eur:12,.2f}",
        f"  median {liquidity.median_eur:14,.2f}   p90 {liquidity.p90_eur:15,.2f}",
        "",
        "IOU issuer concentration (outstanding EUR value by issuer)",
        f"  issuers {issuers.issuers:4d}   outstanding {issuers.outstanding_eur:15,.2f}",
    ]
    for k, share in sorted(issuers.shares.items()):
        lines.append(f"  top {k:3d} issuers hold {share:6.1%} of outstanding IOUs")
    lines += [
        "",
        "Trust-limit utilization (balance/limit over credited lines)",
        f"  lines {utilization.lines:6d}   mean {utilization.mean:6.1%}   "
        f"p90 {utilization.p90:6.1%}",
        f"  over-extended (>= {utilization.threshold:.0%}) "
        f"{utilization.overextended:5d} ({utilization.overextended_fraction:.1%})",
        "",
        "Settlability (sampled pairs that can settle the target amount)",
        f"  pairs {probe.pairs:5d}   settlable {probe.settlable:5d}   "
        f"target {probe.amount:g}   fraction {probe.fraction:6.1%}",
    ]
    return "\n".join(lines)
