"""Named adversarial scenario packs and the UNL-overlap fork sweep.

The generic fault plans in :mod:`repro.chaos.plan` stress the *resilient*
regime: full UNL overlap, byzantine population under f < n/5, and the
drill shows consensus bending without breaking.  The packs here do the
opposite — each one reconstructs a published attack against the protocol
and demonstrates the claimed outcome end to end:

``amores-cachin-delay``
    The windowed message-delay + equivocation schedule of Amores-Sesar,
    Cachin & Mićić (*Security Analysis of Ripple Consensus*, Theorem 2).
    Two validator camps with low UNL overlap are separated by an
    adversarial partition while fewer than 20 % of the roster equivocates
    (signing every page either side closes) and three proposers are
    delayed a deliberation step.  Both camps complete conflicting
    per-view validation quorums at the same sequence — a recorded safety
    violation that :func:`repro.consensus.forks.find_forks` flags.

``sissle-fixed``
    The counterfactual the same analysis proves safe: the identical fault
    schedule (same windows, same equivocators, same delays) replayed over
    a fully-overlapping UNL.  The heard gate now needs signatures from
    across the partition, so the network *halts* — degraded and failed
    closes — instead of forking.  Equivocation is provably harmless under
    full overlap: two conflicting pages would each need a quorum of the
    one shared UNL, and the honest signers cannot cover both.

``unl-overlap-sweep``
    Chase & MacBrough's question (*Analysis of the XRP Ledger Consensus
    Protocol*) asked quantitatively: two camps of eight validators share
    ``s`` hub validators; sweeping ``s`` records the empirical overlap at
    which forks stop.  Registered as the ``fork_threshold`` artifact with
    a sharded map/reduce contract, so ``--jobs N`` computes points in
    parallel bit-for-bit identically to the serial path.

Every run is reproducible from ``(scenario, seed, rounds)``; drill
reports carry the plan fingerprint so manifests pin the exact schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.registry import ArtifactResult, ShardedCompute, register
from repro.chaos.drill import DrillReport, run_drill
from repro.chaos.plan import (
    ByzantineFault,
    FaultPlan,
    MessageFault,
    PartitionFault,
    Window,
)
from repro.consensus.faults import Behaviour, ValidatorProfile
from repro.consensus.forks import ForkEvent, find_forks
from repro.consensus.network import NetworkModel
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.obs.metrics import METRICS

# Amores-Cachin roster geometry ------------------------------------------------
#
# Camp A trusts itself plus the equivocators (11 members, quorum 9); camp
# B trusts only itself (8 members, quorum 7).  The three equivocators are
# 3/19 ≈ 15.8 % of the roster — inside the f < n/5 bound the white paper
# assumes safe.  The attack needs them: without their co-signatures camp
# A musters at most 8 < 9 signatures and cannot view-validate anything.

AC_SIDE_A: Tuple[str, ...] = tuple(f"ac-a{i}" for i in range(1, 9))
AC_SIDE_B: Tuple[str, ...] = tuple(f"ac-b{i}" for i in range(1, 9))
AC_EQUIVOCATORS: Tuple[str, ...] = tuple(f"ac-z{i}" for i in range(1, 4))

#: Initial-position transaction visibility under adversarial scheduling.
#: The default active profile receives 98 % of the open pool, which makes
#: both sides of any partition converge to the same page; delaying a
#: quarter of the submissions (the adversary reorders the mempool too)
#: lets the camps close genuinely different transaction sets.
ADVERSARIAL_RECEIVE = 0.75

# UNL-overlap sweep geometry ---------------------------------------------------

SWEEP_GROUP = 8
SWEEP_SHARED: Tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8)


@dataclass
class ScenarioSetup:
    """Everything :func:`run_scenario` feeds into the drill."""

    roster: List[Validator]
    plan: FaultPlan
    #: ``None`` keeps the drill's default lossy network.
    network: Optional[NetworkModel] = None


@dataclass(frozen=True)
class ScenarioPack:
    """One named, reproducible adversarial scenario."""

    name: str
    description: str
    #: The published analysis the pack reconstructs.
    source: str
    #: One-line expected outcome, asserted by the drill goldens.
    expected: str
    #: ``drill`` packs run through :func:`run_scenario`; the ``sweep``
    #: pack dispatches to the ``fork_threshold`` artifact.
    kind: str = "drill"
    build: Optional[Callable[[int], ScenarioSetup]] = None


@dataclass
class ScenarioReport(DrillReport):
    """A drill report extended with the scenario's safety ledger."""

    scenario: str = ""
    source: str = ""
    expected: str = ""
    #: Conflicting per-view validations, the recorded safety violations.
    fork_events: List[ForkEvent] = field(default_factory=list)
    #: Close attempts that did not produce a fully validated ledger.
    liveness_violations: int = 0

    @property
    def safety_violations(self) -> int:
        return len(self.fork_events)


def _adversarial_profile() -> ValidatorProfile:
    return ValidatorProfile(
        Behaviour.ACTIVE,
        availability=1.0,
        sync_quality=1.0,
        receive_probability=ADVERSARIAL_RECEIVE,
    )


def _amores_plan(name: str, rounds: int) -> FaultPlan:
    window = Window(int(rounds * 0.25), int(rounds * 0.75))
    return FaultPlan(
        name=name,
        description=(
            "windowed partition + sub-20% equivocation + delayed proposers"
        ),
        partitions=(
            PartitionFault(
                window,
                (
                    frozenset(AC_SIDE_A + AC_EQUIVOCATORS),
                    frozenset(AC_SIDE_B),
                ),
            ),
        ),
        byzantine=tuple(
            ByzantineFault(name_, window, equivocate=True)
            for name_ in AC_EQUIVOCATORS
        ),
        messages=(MessageFault(window, stale=AC_SIDE_A[:3]),),
    )


def _amores_setup(rounds: int) -> ScenarioSetup:
    unl_a = UNL.of(AC_SIDE_A + AC_EQUIVOCATORS)
    unl_b = UNL.of(AC_SIDE_B)
    unl_z = UNL.of(AC_SIDE_A + AC_SIDE_B + AC_EQUIVOCATORS)
    roster = (
        [Validator(n, unl_a, _adversarial_profile()) for n in AC_SIDE_A]
        + [Validator(n, unl_b, _adversarial_profile()) for n in AC_SIDE_B]
        + [Validator(n, unl_z, _adversarial_profile()) for n in AC_EQUIVOCATORS]
    )
    return ScenarioSetup(
        roster=roster, plan=_amores_plan("amores-cachin-delay", rounds)
    )


def _sissle_setup(rounds: int) -> ScenarioSetup:
    """The same attack over a fully-overlapping UNL: halts, never forks."""
    trusted = UNL.of(AC_SIDE_A + AC_SIDE_B + AC_EQUIVOCATORS)
    roster = [
        Validator(name, trusted, _adversarial_profile())
        for name in AC_SIDE_A + AC_SIDE_B + AC_EQUIVOCATORS
    ]
    return ScenarioSetup(roster=roster, plan=_amores_plan("sissle-fixed", rounds))


SCENARIOS: Dict[str, ScenarioPack] = {
    pack.name: pack
    for pack in (
        ScenarioPack(
            name="amores-cachin-delay",
            description=(
                "low-overlap camps + windowed delay/equivocation: "
                "conflicting per-view validations (safety violation)"
            ),
            source="Amores-Sesar, Cachin & Mićić, Theorem 2",
            expected=(
                "conflicting pages view-validated at the same sequence "
                "inside the attack window"
            ),
            build=_amores_setup,
        ),
        ScenarioPack(
            name="sissle-fixed",
            description=(
                "identical fault schedule over a fully-overlapping UNL: "
                "the network halts instead of forking"
            ),
            source="Amores-Sesar, Cachin & Mićić, §6 (safe configuration)",
            expected=(
                "zero fork events; degraded/failed closes during the "
                "attack window (liveness, not safety, pays)"
            ),
            build=_sissle_setup,
        ),
        ScenarioPack(
            name="unl-overlap-sweep",
            description=(
                "sweep shared-hub count between two 8-validator camps and "
                "record the empirical fork threshold"
            ),
            source="Chase & MacBrough, XRP LCP analysis (overlap bounds)",
            expected=(
                "forks at low overlap; above the threshold the heard gate "
                "halts the minority camp instead"
            ),
            kind="sweep",
        ),
    )
}


def scenario(name: str) -> ScenarioPack:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None


def drill_scenarios() -> List[str]:
    """Scenario names runnable through :func:`run_scenario`."""
    return sorted(
        name for name, pack in SCENARIOS.items() if pack.kind == "drill"
    )


def run_scenario(
    name: str,
    seed: int = 7,
    rounds: int = 240,
    payments_per_close: int = 2,
) -> ScenarioReport:
    """Run a drill-kind scenario pack and score its safety/liveness ledger.

    The consensus engine's raw validation stream is collected through a
    drill observer and replayed against every view in the roster; each
    sequence where two conflicting pages both reached a per-view quorum
    becomes a :class:`~repro.consensus.forks.ForkEvent`.  Violation
    counts are mirrored into :data:`~repro.obs.metrics.METRICS` as
    ``chaos.safety_violations`` / ``chaos.liveness_violations``.
    """
    pack = scenario(name)
    if pack.kind != "drill" or pack.build is None:
        raise KeyError(
            f"scenario {name!r} is a {pack.kind} pack; "
            f"drill scenarios: {', '.join(drill_scenarios())}"
        )
    setup = pack.build(rounds)
    validations: List = []
    base = run_drill(
        setup.plan,
        seed=seed,
        rounds=rounds,
        payments_per_close=payments_per_close,
        validators=setup.roster,
        network=setup.network,
        observers=(validations.append,),
    )
    forks = find_forks(validations, setup.roster)
    report = ScenarioReport(
        **base.__dict__,
        scenario=pack.name,
        source=pack.source,
        expected=pack.expected,
        fork_events=forks,
    )
    report.liveness_violations = (
        report.closes_attempted - report.validated_closes
    )
    METRICS.count("chaos.safety_violations", report.safety_violations)
    METRICS.count("chaos.liveness_violations", report.liveness_violations)
    return report


# UNL-overlap sweep ------------------------------------------------------------


def sweep_points(rounds: int) -> List[Dict[str, int]]:
    """The sweep's shard-able work list, one point per shared-hub count."""
    return [
        {"index": index, "shared": shared, "group": SWEEP_GROUP,
         "rounds": rounds}
        for index, shared in enumerate(SWEEP_SHARED)
    ]


def run_overlap_point(point: Dict[str, int], seed: int) -> Dict[str, object]:
    """One sweep point: two camps of ``group`` validators plus ``shared``
    hubs trusted by both, partitioned for the middle 60 % of the run.

    The point runs over a loss-free network: the sweep asks where the
    *protocol* forks under adversarial scheduling, and background message
    loss only blurs the threshold.  The per-point seed is derived from
    the request seed and the point, so points are independent of shard
    assignment — serial and ``--jobs N`` runs are bit-for-bit identical.
    """
    shared, group, rounds = point["shared"], point["group"], point["rounds"]
    side_a = [f"ov-a{i}" for i in range(1, group + 1)]
    side_b = [f"ov-b{i}" for i in range(1, group + 1)]
    hubs = [f"ov-s{i}" for i in range(1, shared + 1)]
    unl_a = UNL.of(side_a + hubs)
    unl_b = UNL.of(side_b + hubs)
    roster = (
        [Validator(n, unl_a, _adversarial_profile()) for n in side_a]
        + [Validator(n, unl_b, _adversarial_profile()) for n in side_b]
        + [Validator(n, unl_a, _adversarial_profile()) for n in hubs]
    )
    window = Window(int(rounds * 0.2), int(rounds * 0.8))
    plan = FaultPlan(
        name=f"overlap-{shared}",
        description=f"{shared} shared hubs between two {group}-camps",
        partitions=(
            PartitionFault(
                window, (frozenset(side_a + hubs), frozenset(side_b))
            ),
        ),
    )
    validations: List = []
    report = run_drill(
        plan,
        seed=seed * 7919 + shared,
        rounds=rounds,
        validators=roster,
        network=NetworkModel(base_loss=0.0),
        observers=(validations.append,),
    )
    forks = find_forks(validations, roster)
    return {
        "index": point["index"],
        "shared": shared,
        "overlap": shared / (group + shared),
        "forks": len(forks),
        "fork_sequences": [event.sequence for event in forks],
        "validated_closes": report.validated_closes,
        "degraded_closes": report.degraded_closes,
        "failed_closes": report.failed_closes,
    }


def _sweep_context(request) -> Dict[str, object]:
    rounds = getattr(request, "rounds", None) or 240
    return {
        "seed": request.seed,
        "rounds": rounds,
        "points": sweep_points(rounds),
    }


def _sweep_shards(context: Dict[str, object], jobs: int) -> List[Dict]:
    points = context["points"]
    chunks = min(max(1, jobs), len(points))
    per, extra = divmod(len(points), chunks)
    shards, start = [], 0
    for chunk in range(chunks):
        width = per + (1 if chunk < extra else 0)
        shards.append(
            {"points": points[start:start + width], "seed": context["seed"]}
        )
        start += width
    return shards


def sweep_shard_rows(shard: Dict[str, object]) -> List[Dict[str, object]]:
    """Worker entry point: compute every point assigned to this shard."""
    return [run_overlap_point(point, shard["seed"]) for point in shard["points"]]


def _threshold_payload(
    rows: List[Dict[str, object]], context: Dict[str, object]
) -> Dict[str, object]:
    rows = sorted(rows, key=lambda row: row["index"])
    forked = [row for row in rows if row["forks"]]
    safe = [row for row in rows if not row["forks"]]
    return {
        "group": SWEEP_GROUP,
        "rounds": context["rounds"],
        "seed": context["seed"],
        "rows": rows,
        "fork_threshold": max(
            (row["overlap"] for row in forked), default=None
        ),
        "min_safe_overlap": min(
            (row["overlap"] for row in safe), default=None
        ),
    }


def _threshold_result(payload: Dict[str, object]) -> ArtifactResult:
    rows = payload["rows"]
    return ArtifactResult(
        data=payload,
        metrics={
            "sweep_points": len(rows),
            "forked_points": sum(1 for row in rows if row["forks"]),
            "fork_events": sum(row["forks"] for row in rows),
        },
    )


def _compute_fork_threshold(request) -> ArtifactResult:
    context = _sweep_context(request)
    rows = sweep_shard_rows(
        {"points": context["points"], "seed": context["seed"]}
    )
    return _threshold_result(_threshold_payload(rows, context))


def _merge_fork_threshold(partials: List[List[Dict]], context) -> ArtifactResult:
    rows = [row for partial in partials for row in partial]
    return _threshold_result(_threshold_payload(rows, context))


def render_fork_threshold(payload: Dict[str, object]) -> str:
    """The sweep as terminal text: one row per overlap point."""
    lines = [
        f"UNL-overlap fork-threshold sweep "
        f"(two camps of {payload['group']}, {payload['rounds']} close "
        f"attempts, seed {payload['seed']})",
        "",
        f"  {'shared':>6s} {'overlap':>8s} {'forks':>6s} "
        f"{'validated':>10s} {'degraded':>9s} {'failed':>7s}",
    ]
    for row in payload["rows"]:
        lines.append(
            f"  {row['shared']:6d} {row['overlap']:8.3f} {row['forks']:6d} "
            f"{row['validated_closes']:10d} {row['degraded_closes']:9d} "
            f"{row['failed_closes']:7d}"
        )
    threshold = payload["fork_threshold"]
    safe = payload["min_safe_overlap"]
    lines.append("")
    if threshold is None:
        lines.append("  no forks observed at any overlap")
    else:
        lines.append(
            f"  empirical fork threshold: forks up to overlap "
            f"{threshold:.3f}"
        )
    if safe is not None:
        lines.append(
            f"  smallest fork-free overlap: {safe:.3f} "
            f"(minority camp halts on the heard gate instead)"
        )
    return "\n".join(lines)


register(
    "fork_threshold",
    "UNL-overlap sweep: empirical fork threshold (per-view validation)",
    _compute_fork_threshold,
    lambda payload, args: render_fork_threshold(payload),
    sharded=ShardedCompute(
        prepare=_sweep_context,
        shards=_sweep_shards,
        compute_shard=sweep_shard_rows,
        merge=_merge_fork_threshold,
    ),
)


__all__ = [
    "AC_EQUIVOCATORS",
    "AC_SIDE_A",
    "AC_SIDE_B",
    "SCENARIOS",
    "SWEEP_GROUP",
    "SWEEP_SHARED",
    "ScenarioPack",
    "ScenarioReport",
    "ScenarioSetup",
    "drill_scenarios",
    "render_fork_threshold",
    "run_overlap_point",
    "run_scenario",
    "scenario",
    "sweep_points",
    "sweep_shard_rows",
]
