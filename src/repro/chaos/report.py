"""Rendering chaos drills, and their registration as a CLI artifact.

The report mirrors Fig. 2 of the paper — per-validator total vs. valid
signed pages — but adds the degradation ledger: how many closes needed
retries, how many sealed off a reduced quorum, how often the validation
stream dropped and recovered.  Importing this module registers the
``chaos`` artifact (and, via :mod:`repro.chaos.scenarios`, the
``fork_threshold`` sweep), so ``python -m repro chaos --plan partition``
dispatches through the same :mod:`repro.api` table as the figures.

``--plan`` also accepts the named adversarial scenario packs: drill
packs run through :func:`repro.chaos.scenarios.run_scenario` and render
their fork ledger on top of the health table; the ``unl-overlap-sweep``
pack delegates to the ``fork_threshold`` artifact's compute.
"""

from __future__ import annotations

from repro.api.registry import ArtifactResult, register
from repro.api.request import ArtifactRequest
from repro.chaos.drill import DrillReport, run_drill
from repro.chaos.plan import PLANS
from repro.chaos.scenarios import (
    SCENARIOS,
    ScenarioReport,
    _compute_fork_threshold,
    render_fork_threshold,
    run_scenario,
)


def _flags(row) -> str:
    marks = []
    if row.is_ripple_labs:
        marks.append("ripple-labs")
    if row.is_byzantine:
        marks.append("byzantine")
    return " ".join(marks)


def render_chaos_report(report: DrillReport) -> str:
    """The drill outcome as terminal text (Fig. 2 health + fault counters)."""
    plan = report.plan
    lines = [
        f"Chaos drill — plan '{plan.name}' (seed {report.seed}, "
        f"{report.rounds} close attempts)",
        f"  {plan.description}",
        f"  plan fingerprint {plan.fingerprint()[:12]}",
        "",
        "Ledger closes",
        f"  attempted {report.closes_attempted:5d}   "
        f"validated {report.validated_closes:5d}   "
        f"degraded {report.degraded_closes:4d}   "
        f"failed {report.failed_closes:4d}",
        f"  round retries {report.round_retries:4d}   "
        f"availability {report.availability * 100:5.1f}%",
        "",
        "Validation stream",
        f"  relayed {report.stream_relayed:6d}   "
        f"replayed {report.stream_replayed:5d}   "
        f"reconnects {report.stream_reconnects:3d}   "
        f"duplicates dropped {report.duplicates_dropped:5d}",
        "",
        "Injected faults",
    ]
    for name, value in report.counters.as_dict().items():
        if value:
            lines.append(f"  {name:24s} {value:8d}")
    if isinstance(report, ScenarioReport):
        lines += [
            "",
            f"Scenario '{report.scenario}' — {report.source}",
            f"  expected: {report.expected}",
            f"  safety violations  {report.safety_violations:5d}   "
            f"liveness violations {report.liveness_violations:5d}",
        ]
        for event in report.fork_events:
            lines.append(f"  FORK {event.describe()}")
    lines += [
        "",
        "Validator health (total vs. valid signed pages, as in Fig. 2)",
        f"  {'validator':26s} {'total':>7s} {'valid':>7s} {'valid%':>7s}",
    ]
    for row in report.health:
        lines.append(
            f"  {row.name:26s} {row.total_pages:7d} {row.valid_pages:7d} "
            f"{row.valid_fraction * 100:6.1f}%  {_flags(row)}".rstrip()
        )
    payments = (
        f"  payments applied {report.payments_applied}/"
        f"{report.payments_submitted}"
    )
    return "\n".join(lines + ["", "Payments", payments])


def _compute_chaos(args: ArtifactRequest) -> ArtifactResult:
    plan = getattr(args, "plan", None) or "partition"
    rounds = getattr(args, "rounds", None) or 240
    pack = SCENARIOS.get(plan)
    if pack is not None and pack.kind == "sweep":
        return _compute_fork_threshold(args)
    if pack is not None:
        report = run_scenario(plan, seed=args.seed, rounds=rounds)
        return ArtifactResult(
            data=report,
            metrics={
                "closes_attempted": report.closes_attempted,
                "validated_closes": report.validated_closes,
                "degraded_closes": report.degraded_closes,
                "failed_closes": report.failed_closes,
                "safety_violations": report.safety_violations,
                "liveness_violations": report.liveness_violations,
            },
            manifest={"plan_fingerprint": report.plan.fingerprint()},
        )
    report = run_drill(plan, seed=args.seed, rounds=rounds)
    return ArtifactResult(
        data=report,
        metrics={
            "closes_attempted": report.closes_attempted,
            "validated_closes": report.validated_closes,
            "degraded_closes": report.degraded_closes,
            "failed_closes": report.failed_closes,
        },
        manifest={"plan_fingerprint": report.plan.fingerprint()},
    )


def _render_chaos(payload, args) -> str:
    if isinstance(payload, dict):  # the sweep pack's delegated payload
        return render_fork_threshold(payload)
    return render_chaos_report(payload)


register(
    "chaos",
    "fault-injection drill: validator health under a fault plan",
    _compute_chaos,
    _render_chaos,
)

__all__ = ["render_chaos_report", "PLANS", "SCENARIOS"]
