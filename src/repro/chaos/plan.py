"""Seeded fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a declarative schedule over consensus rounds (and,
for stream faults, over stream time).  Plans are pure data — deterministic
given their fields — so a drill run is reproducible from ``(plan, seed)``
alone.  The :data:`PLANS` registry holds named builders replaying the
fault scenarios of the cited consensus analyses; :func:`random_plan`
generates arbitrary (but seed-stable) plans for property testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.consensus.engine import CLOSE_INTERVAL_SECONDS
from repro.consensus.faults import Behaviour, RoundFaults


@dataclass(frozen=True)
class Window:
    """A half-open round window ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window end {self.end} before start {self.start}")

    def covers(self, round_index: int) -> bool:
        return self.start <= round_index < self.end


@dataclass(frozen=True)
class MessageFault:
    """Message-level faults on the proposal exchange during a window.

    ``extra_loss`` — additional drop probability on every link;
    ``blocked``    — validators whose proposals are suppressed entirely
                     (a delayed message in a synchronous round model);
    ``stale``      — validators whose proposals arrive one deliberation
                     iteration late (delay/reorder schedules).
    """

    window: Window
    extra_loss: float = 0.0
    blocked: Tuple[str, ...] = ()
    stale: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PartitionFault:
    """The network splits into ``groups`` for the window."""

    window: Window
    groups: Tuple[FrozenSet[str], ...]


@dataclass(frozen=True)
class CrashFault:
    """``name`` crashes at ``window.start`` and restarts at ``window.end``."""

    name: str
    window: Window


@dataclass(frozen=True)
class ByzantineFault:
    """``name`` proposes conflicting transaction sets during the window.

    With ``equivocate`` the validator additionally stops closing its own
    page and instead signs a validation for *every* page its peers close
    — the vote-splitting equivocation that lets a divided network
    complete conflicting quorums (Amores-Sesar et al., Theorem 2).
    """

    name: str
    window: Window
    equivocate: bool = False


@dataclass(frozen=True)
class StreamFault:
    """The validation-stream connection is down for a *time* window.

    Expressed in stream time (seconds) because the collector operates on
    receive timestamps, not on round indices.
    """

    window: Window


@dataclass(frozen=True)
class FaultPlan:
    """A full, seeded fault schedule for one drill run."""

    name: str
    description: str = ""
    messages: Tuple[MessageFault, ...] = ()
    partitions: Tuple[PartitionFault, ...] = ()
    crashes: Tuple[CrashFault, ...] = ()
    byzantine: Tuple[ByzantineFault, ...] = ()
    stream: Tuple[StreamFault, ...] = ()

    def round_faults(self, round_index: int) -> Optional[RoundFaults]:
        """Merge every schedule active at ``round_index``.

        Returns ``None`` when nothing is active, so fault-free rounds take
        the exact pre-chaos code path.
        """
        extra_loss = 0.0
        blocked: set = set()
        stale: set = set()
        overrides: Dict[str, Behaviour] = {}
        crashed: set = set()
        groups: Tuple[FrozenSet[str], ...] = ()
        for fault in self.messages:
            if fault.window.covers(round_index):
                extra_loss = max(extra_loss, fault.extra_loss)
                blocked.update(fault.blocked)
                stale.update(fault.stale)
        for partition in self.partitions:
            if partition.window.covers(round_index):
                groups = partition.groups
        for crash in self.crashes:
            if crash.window.covers(round_index):
                crashed.add(crash.name)
        equivocating: set = set()
        for flip in self.byzantine:
            if flip.window.covers(round_index):
                overrides[flip.name] = Behaviour.BYZANTINE
                if flip.equivocate:
                    equivocating.add(flip.name)
        faults = RoundFaults(
            extra_loss=extra_loss,
            blocked=frozenset(blocked),
            stale=frozenset(stale),
            behaviour_overrides=overrides,
            crashed=frozenset(crashed),
            partitions=groups,
            equivocating=frozenset(equivocating),
        )
        return faults if faults.any_active else None

    def stream_disconnected(self, stream_time: int) -> bool:
        """Is the collector's connection down at ``stream_time`` seconds?"""
        return any(f.window.covers(stream_time) for f in self.stream)

    def byzantine_names(self) -> FrozenSet[str]:
        return frozenset(flip.name for flip in self.byzantine)

    # Serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A canonical JSON-able form: sets sorted, schedules in order."""

        def window(w: Window) -> Dict[str, int]:
            return {"start": w.start, "end": w.end}

        return {
            "name": self.name,
            "description": self.description,
            "messages": [
                {
                    "window": window(f.window),
                    "extra_loss": f.extra_loss,
                    "blocked": sorted(f.blocked),
                    "stale": sorted(f.stale),
                }
                for f in self.messages
            ],
            "partitions": [
                {
                    "window": window(f.window),
                    "groups": [sorted(group) for group in f.groups],
                }
                for f in self.partitions
            ],
            "crashes": [
                {"name": f.name, "window": window(f.window)}
                for f in self.crashes
            ],
            "byzantine": [
                {
                    "name": f.name,
                    "window": window(f.window),
                    "equivocate": f.equivocate,
                }
                for f in self.byzantine
            ],
            "stream": [{"window": window(f.window)} for f in self.stream],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (exact round trip)."""

        def window(data) -> Window:
            return Window(int(data["start"]), int(data["end"]))

        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            messages=tuple(
                MessageFault(
                    window(f["window"]),
                    extra_loss=float(f.get("extra_loss", 0.0)),
                    blocked=tuple(f.get("blocked", ())),
                    stale=tuple(f.get("stale", ())),
                )
                for f in payload.get("messages", ())
            ),
            partitions=tuple(
                PartitionFault(
                    window(f["window"]),
                    tuple(frozenset(group) for group in f["groups"]),
                )
                for f in payload.get("partitions", ())
            ),
            crashes=tuple(
                CrashFault(str(f["name"]), window(f["window"]))
                for f in payload.get("crashes", ())
            ),
            byzantine=tuple(
                ByzantineFault(
                    str(f["name"]),
                    window(f["window"]),
                    equivocate=bool(f.get("equivocate", False)),
                )
                for f in payload.get("byzantine", ())
            ),
            stream=tuple(
                StreamFault(window(f["window"]))
                for f in payload.get("stream", ())
            ),
        )

    def fingerprint(self) -> str:
        """sha256 over the canonical dict — a stable schedule identity.

        Two plans with the same schedules fingerprint identically even
        when their in-memory tuples list blocked/stale names in different
        orders; the drill manifests record this value.
        """
        import hashlib
        import json

        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# Named plans ------------------------------------------------------------------
#
# Builders take the drill's round count and roster (ordered validator names)
# and lay schedules proportionally, so the same plan name scales from a
# 100-round smoke run to a full two-week-equivalent drill.


def _round_window(rounds: int, start: float, end: float) -> Window:
    return Window(int(rounds * start), int(rounds * end))


def _time_window(rounds: int, start: float, end: float) -> Window:
    return Window(
        int(rounds * start) * CLOSE_INTERVAL_SECONDS,
        int(rounds * end) * CLOSE_INTERVAL_SECONDS,
    )


def partition_plan(rounds: int, roster: Sequence[str]) -> FaultPlan:
    """Chase & MacBrough's UNL-overlap scenario: split, heal, re-split.

    The master UNL is cut into two overlapping halves for a third of the
    run; neither side reaches the 80 % validation quorum, the node retries
    and degrades, and after the heal the chain recovers — the paper's
    'consensus keeps working' claim exercised under the worst published
    partition schedule.
    """
    half = max(1, len(roster) // 2)
    first, second = frozenset(roster[:half]), frozenset(roster[half:])
    return FaultPlan(
        name="partition",
        description="two overlapping-UNL partitions with a heal between them",
        partitions=(
            PartitionFault(_round_window(rounds, 0.20, 0.45), (first, second)),
            PartitionFault(_round_window(rounds, 0.70, 0.85), (first, second)),
        ),
        stream=(StreamFault(_time_window(rounds, 0.30, 0.38)),),
    )


def delay_plan(rounds: int, roster: Sequence[str]) -> FaultPlan:
    """Amores-Sesar et al.'s message-delay schedule.

    An adversary delaying proposals from half the validators (stale
    positions plus heavy link loss) keeps deliberation from converging —
    the liveness violation of their Theorem 2, bounded here by the node's
    retry/degradation policy.
    """
    delayed = tuple(roster[: max(1, len(roster) // 2)])
    return FaultPlan(
        name="delay",
        description="adversarial message delay/reorder on half the roster",
        messages=(
            MessageFault(
                _round_window(rounds, 0.25, 0.55),
                extra_loss=0.45,
                stale=delayed,
            ),
            MessageFault(
                _round_window(rounds, 0.55, 0.65),
                blocked=delayed[: max(1, len(delayed) // 2)],
            ),
        ),
    )


def crash_plan(rounds: int, roster: Sequence[str]) -> FaultPlan:
    """Rolling validator crash/restart across the most trusted servers."""
    slice_width = 0.15
    crashes = []
    for index, name in enumerate(roster[: min(5, len(roster))]):
        start = 0.15 + index * 0.12
        crashes.append(
            CrashFault(name, _round_window(rounds, start, start + slice_width))
        )
    return FaultPlan(
        name="crash",
        description="rolling crash/restart of the five most trusted validators",
        crashes=tuple(crashes),
    )


def byzantine_plan(rounds: int, roster: Sequence[str]) -> FaultPlan:
    """Flip just under 20 % of the roster to byzantine for half the run.

    Below the f < n/5 bound of the consensus white paper the network must
    keep validating — the safety side of the robustness claim.
    """
    count = max(1, (len(roster) - 1) // 5)
    flips = tuple(
        ByzantineFault(name, _round_window(rounds, 0.25, 0.75))
        for name in roster[-count:]
    )
    return FaultPlan(
        name="byzantine",
        description="<20% of validators propose conflicting sets",
        byzantine=flips,
    )


def disconnect_plan(rounds: int, roster: Sequence[str]) -> FaultPlan:
    """Repeated validation-stream disconnects; the collector must survive
    reconnection and deduplicate the replayed events."""
    return FaultPlan(
        name="disconnect",
        description="three stream disconnects with at-least-once replay",
        stream=(
            StreamFault(_time_window(rounds, 0.10, 0.20)),
            StreamFault(_time_window(rounds, 0.45, 0.50)),
            StreamFault(_time_window(rounds, 0.75, 0.90)),
        ),
    )


def mixed_plan(rounds: int, roster: Sequence[str]) -> FaultPlan:
    """Everything at once: the 'as many scenarios as you can imagine' drill."""
    base = partition_plan(rounds, roster)
    delay = delay_plan(rounds, roster)
    byz = byzantine_plan(rounds, roster)
    crash = crash_plan(rounds, roster)
    return FaultPlan(
        name="mixed",
        description="partitions + delays + crashes + byzantine flips",
        messages=delay.messages,
        partitions=base.partitions,
        crashes=crash.crashes[:2],
        byzantine=byz.byzantine[:1],
        stream=base.stream,
    )


PLANS: Dict[str, Callable[[int, Sequence[str]], FaultPlan]] = {
    "partition": partition_plan,
    "delay": delay_plan,
    "crash": crash_plan,
    "byzantine": byzantine_plan,
    "disconnect": disconnect_plan,
    "mixed": mixed_plan,
}


def build_plan(name: str, rounds: int, roster: Sequence[str]) -> FaultPlan:
    """Materialize the named plan for a run of ``rounds`` over ``roster``."""
    try:
        builder = PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault plan {name!r}; known: {', '.join(sorted(PLANS))}"
        ) from None
    return builder(rounds, roster)


def random_plan(
    seed: int,
    rounds: int,
    roster: Sequence[str],
    max_byzantine_fraction: float = 0.2,
) -> FaultPlan:
    """A seed-stable arbitrary plan, used by the safety property tests.

    Byzantine flips are capped strictly below ``max_byzantine_fraction`` of
    the roster, matching the f < n/5 regime in which the cited analyses
    prove agreement — plans drawn from this generator must never produce
    two conflicting validated pages at the same sequence.
    """
    rng = np.random.default_rng(seed)
    names = list(roster)

    def window() -> Window:
        start = int(rng.integers(0, max(1, rounds - 1)))
        end = int(rng.integers(start + 1, rounds + 1))
        return Window(start, end)

    messages = tuple(
        MessageFault(
            window(),
            extra_loss=float(rng.uniform(0.0, 0.6)),
            blocked=tuple(
                rng.choice(names, size=int(rng.integers(0, len(names) // 2 + 1)),
                           replace=False)
            ),
            stale=tuple(
                rng.choice(names, size=int(rng.integers(0, len(names) // 2 + 1)),
                           replace=False)
            ),
        )
        for _ in range(int(rng.integers(0, 3)))
    )
    partitions = ()
    if rng.random() < 0.6:
        cut = int(rng.integers(1, len(names)))
        partitions = (
            PartitionFault(
                window(), (frozenset(names[:cut]), frozenset(names[cut:]))
            ),
        )
    crashes = tuple(
        CrashFault(str(rng.choice(names)), window())
        for _ in range(int(rng.integers(0, 3)))
    )
    max_byzantine = int(np.ceil(len(names) * max_byzantine_fraction)) - 1
    byz_count = int(rng.integers(0, max(0, max_byzantine) + 1))
    byz_names = rng.choice(names, size=byz_count, replace=False) if byz_count else []
    # Half the flips also equivocate: under full UNL overlap the safety
    # property must hold against vote-splitting signatures too.
    byzantine = tuple(
        ByzantineFault(str(name), window(), equivocate=bool(rng.random() < 0.5))
        for name in byz_names
    )
    return FaultPlan(
        name=f"random-{seed}",
        description="randomized plan for property testing",
        messages=messages,
        partitions=partitions,
        crashes=crashes,
        byzantine=byzantine,
    )
