"""Fault injection and graceful degradation for the consensus runtime.

The paper's Fig. 2 claim is that Ripple consensus keeps working while the
observed validator population is dominated by lagging, forked, and offline
servers.  This package turns that claim into an executable drill: a seeded
:class:`FaultPlan` describes *when* and *where* faults strike (message
drops/delays/reorders, partitions, crashes and restarts, byzantine flips,
stream disconnects), a :class:`ChaosInjector` feeds the plan into the
consensus engine round by round, and :func:`run_drill` drives a resilient
:class:`~repro.node.RippledNode` through the schedule, reporting
per-validator health the way Fig. 2 does.

The named plans in :data:`PLANS` replay the attack schedules of the two
analyses the study builds on: the message-delay/partition scenarios of
Amores-Sesar et al. (*Security Analysis of Ripple Consensus*) and the
UNL-overlap recovery conditions of Chase & MacBrough (*Analysis of the XRP
Ledger Consensus Protocol*).

With no plan attached every code path is byte-identical to the fault-free
runtime — chaos off means bit-for-bit reproducible simulations.
"""

from repro.chaos.drill import DrillReport, ValidatorHealth, run_drill
from repro.chaos.injector import ChaosInjector, FaultCounters
from repro.chaos.plan import (
    PLANS,
    ByzantineFault,
    CrashFault,
    FaultPlan,
    MessageFault,
    PartitionFault,
    StreamFault,
    Window,
    build_plan,
    random_plan,
)
from repro.chaos.report import render_chaos_report
from repro.chaos.scenarios import (
    SCENARIOS,
    ScenarioPack,
    ScenarioReport,
    drill_scenarios,
    render_fork_threshold,
    run_scenario,
)

__all__ = [
    "PLANS",
    "SCENARIOS",
    "ByzantineFault",
    "ChaosInjector",
    "CrashFault",
    "DrillReport",
    "FaultCounters",
    "FaultPlan",
    "MessageFault",
    "PartitionFault",
    "ScenarioPack",
    "ScenarioReport",
    "StreamFault",
    "ValidatorHealth",
    "Window",
    "build_plan",
    "drill_scenarios",
    "random_plan",
    "render_chaos_report",
    "render_fork_threshold",
    "run_drill",
    "run_scenario",
]
