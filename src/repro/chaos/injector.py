"""The chaos injector: feeds a fault plan into the runtime and keeps score.

One injector instance is shared by every component under test — the
consensus engine pulls per-round :class:`~repro.consensus.faults.RoundFaults`
from it, the stream server asks it whether the collector's connection is up,
and the node reports retries and degraded closes back to it.  All fault
counters therefore land in one :class:`FaultCounters`, which the chaos
report renders and which is mirrored into :data:`repro.obs.metrics.METRICS` so
``--profile`` runs expose degradation alongside the hot-path timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Sequence

from repro.consensus.faults import RoundFaults
from repro.chaos.plan import FaultPlan
from repro.obs.metrics import METRICS


@dataclass
class FaultCounters:
    """Observable effects of one fault-injected run."""

    faulted_rounds: int = 0
    partition_rounds: int = 0
    messages_suppressed: int = 0
    messages_stale: int = 0
    crash_rounds: int = 0
    byzantine_rounds: int = 0
    equivocations: int = 0
    rounds_not_validated: int = 0
    round_retries: int = 0
    degraded_rounds: int = 0
    failed_closes: int = 0
    stream_disconnects: int = 0
    stream_buffered: int = 0
    stream_replayed: int = 0
    duplicates_dropped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ChaosInjector:
    """Binds a :class:`FaultPlan` to a running system.

    Implements the engine's ``ChaosHook`` duck type
    (:meth:`faults_for_round` / :meth:`note_round`) plus the stream- and
    node-side callbacks.  ``None`` results mean "no faults this round" and
    guarantee the pristine code path.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self.counters = FaultCounters()
        self._stream_was_down = False

    # Engine-side hook ---------------------------------------------------------

    def faults_for_round(
        self, absolute_round: int, validators: Sequence[object]
    ) -> Optional[RoundFaults]:
        return self.plan.round_faults(absolute_round)

    def note_round(self, faults: RoundFaults, outcome) -> None:
        """Account one fault-injected round's observable effects."""
        counters = self.counters
        counters.faulted_rounds += 1
        participants = set(outcome.participants)
        if faults.partitions:
            counters.partition_rounds += 1
        if faults.blocked:
            silenced = len(faults.blocked & participants)
            counters.messages_suppressed += silenced * max(0, len(participants) - 1)
        if faults.stale:
            counters.messages_stale += len(faults.stale & participants)
        if faults.crashed:
            counters.crash_rounds += len(faults.crashed)
        if faults.behaviour_overrides:
            counters.byzantine_rounds += len(
                set(faults.behaviour_overrides) & participants
            )
        if faults.equivocating:
            counters.equivocations += len(faults.equivocating)
        if not outcome.validated:
            counters.rounds_not_validated += 1
        self._mirror("chaos.faulted_rounds")

    # Stream-side hook ---------------------------------------------------------

    def stream_disconnected(self, stream_time: int) -> bool:
        """Stream-server callback; also counts disconnect transitions."""
        down = self.plan.stream_disconnected(stream_time)
        if down and not self._stream_was_down:
            self.counters.stream_disconnects += 1
            self._mirror("chaos.stream_disconnects")
        self._stream_was_down = down
        return down

    def note_stream_buffered(self, count: int = 1) -> None:
        self.counters.stream_buffered += count

    def note_stream_replayed(self, count: int) -> None:
        self.counters.stream_replayed += count
        self._mirror("chaos.stream_replayed", count)

    def note_duplicate_dropped(self, count: int = 1) -> None:
        self.counters.duplicates_dropped += count
        self._mirror("chaos.duplicates_dropped", count)

    # Node-side hook -----------------------------------------------------------

    def note_retry(self, count: int = 1) -> None:
        self.counters.round_retries += count
        self._mirror("node.round_retries", count)

    def note_degraded_close(self) -> None:
        self.counters.degraded_rounds += 1
        self._mirror("node.degraded_rounds")

    def note_failed_close(self) -> None:
        self.counters.failed_closes += 1
        self._mirror("node.failed_closes")

    # Internals ----------------------------------------------------------------

    def _mirror(self, name: str, delta: int = 1) -> None:
        METRICS.count(name, delta)
