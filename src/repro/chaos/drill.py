"""Scenario runner: drive a resilient node through a fault plan.

``run_drill`` stands up the full measurement apparatus of the paper's
Section IV — a :class:`~repro.node.RippledNode` with a mixed validator
roster, a chaos-aware :class:`~repro.stream.server.StreamServer`, and a
deduplicating :class:`~repro.stream.collector.StreamCollector` — then
replays a :class:`~repro.chaos.plan.FaultPlan` against it while clients
keep submitting payments.  The resulting :class:`DrillReport` is the
Fig. 2 observable (per-validator total/valid signed pages) plus the
degradation counters that show *how* the node survived: retries, degraded
closes, stream reconnects, deduplicated replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.chaos.injector import ChaosInjector, FaultCounters
from repro.chaos.plan import FaultPlan, build_plan
from repro.consensus.faults import active, lagging
from repro.consensus.network import NetworkModel
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.ledger.accounts import account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import XRP
from repro.ledger.state import LedgerState
from repro.ledger.transactions import Payment
from repro.node import RetryPolicy, RippledNode
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.stream.collector import StreamCollector
from repro.stream.server import StreamServer

#: Ripple Labs anchors plus the community actives of the drill roster.
DRILL_RIPPLE_LABS = ("R1", "R2", "R3", "R4", "R5")
DRILL_ACTIVES = (
    "bougalis.net",
    "freewallet1.net",
    "mduo13.com",
    "youwant.to",
    "duke67.com",
    "n9KDJn...Q7KhQ2",
)
DRILL_LAGGING = ("rippled.media.mit.edu", "rippled.mr.exchange")


def drill_roster() -> List[Validator]:
    """A mid-size mixed roster with fully overlapping UNLs.

    Eleven trusted validators (R1–R5 plus six actives) anchor the master
    UNL; two lagging servers ride along, as in the paper's periods.  Full
    UNL overlap puts the roster in the safe regime of the cited analyses,
    so every fault the drill observes is injected, not structural.
    """
    trusted = UNL.of(DRILL_RIPPLE_LABS + DRILL_ACTIVES)
    validators = [
        Validator(name, trusted, active(availability=0.995), is_ripple_labs=True)
        for name in DRILL_RIPPLE_LABS
    ]
    validators += [
        Validator(name, trusted, active(availability=0.97))
        for name in DRILL_ACTIVES
    ]
    validators += [
        Validator(name, trusted, lagging(availability=0.5, sync_quality=0.1))
        for name in DRILL_LAGGING
    ]
    return validators


@dataclass
class ValidatorHealth:
    """One row of the drill's Fig. 2-style health table."""

    name: str
    total_pages: int
    valid_pages: int
    is_ripple_labs: bool = False
    is_byzantine: bool = False

    @property
    def valid_fraction(self) -> float:
        return self.valid_pages / self.total_pages if self.total_pages else 0.0


@dataclass
class DrillReport:
    """Everything observable about one chaos drill."""

    plan: FaultPlan
    seed: int
    rounds: int
    closes_attempted: int = 0
    ledgers_closed: int = 0
    validated_closes: int = 0
    degraded_closes: int = 0
    failed_closes: int = 0
    round_retries: int = 0
    payments_submitted: int = 0
    payments_applied: int = 0
    stream_relayed: int = 0
    stream_replayed: int = 0
    stream_reconnects: int = 0
    duplicates_dropped: int = 0
    health: List[ValidatorHealth] = field(default_factory=list)
    counters: FaultCounters = field(default_factory=FaultCounters)

    @property
    def availability(self) -> float:
        """Fraction of close attempts that produced a validated ledger."""
        return (
            self.validated_closes / self.closes_attempted
            if self.closes_attempted
            else 0.0
        )

    def health_of(self, name: str) -> Optional[ValidatorHealth]:
        for row in self.health:
            if row.name == name:
                return row
        return None


def run_drill(
    plan: Union[str, FaultPlan],
    seed: int = 0,
    rounds: int = 240,
    payments_per_close: int = 2,
    retry: Optional[RetryPolicy] = None,
    validators: Optional[Sequence[Validator]] = None,
    network: Optional[NetworkModel] = None,
    observers: Sequence[Callable] = (),
) -> DrillReport:
    """Replay ``plan`` against a resilient node and report validator health.

    ``rounds`` counts *close attempts*; consensus retries inside a close
    run additional protocol rounds on top.  The node runs with degraded
    mode enabled — the drill's whole point is observing how far the system
    bends before it stops sealing ledgers.

    ``observers`` subscribe directly to the consensus engine's validation
    stream (no dedup, no disconnects) — the scenario packs use one to
    collect the exact validations their fork detector replays.
    """
    roster = list(validators) if validators is not None else drill_roster()
    names = [v.name for v in roster]
    if isinstance(plan, str):
        plan = build_plan(plan, rounds, names)
    injector = ChaosInjector(plan, seed=seed)

    state = LedgerState()
    accounts = []
    for index in range(8):
        account = account_from_name(f"drill-{index}", namespace="chaos")
        state.create_account(account, 10_000 * 10 ** 6)
        accounts.append(account)

    node = RippledNode(
        state=state,
        validators=roster,
        require_signatures=False,
        network=network if network is not None else NetworkModel(),
        seed=seed,
        retry=retry if retry is not None else RetryPolicy(max_retries=2),
        allow_degraded=True,
        chaos=injector,
    )
    server = StreamServer(seed=seed + 1, chaos=injector)
    collector = StreamCollector(dedupe=True, chaos=injector)
    server.subscribe(collector)
    server.attach(node.consensus)
    for observer in observers:
        node.consensus.subscribe(observer)

    report = DrillReport(plan=plan, seed=seed, rounds=rounds)
    sequences: Dict[object, int] = {account: 0 for account in accounts}
    with METRICS.timer("chaos.drill"), \
            TRACER.span("chaos.drill", plan=plan.name, rounds=rounds):
        for close_index in range(rounds):
            for offset in range(payments_per_close):
                sender = accounts[(close_index + offset) % len(accounts)]
                dest = accounts[(close_index + offset + 1) % len(accounts)]
                sequences[sender] += 1
                tx = Payment(
                    account=sender,
                    sequence=sequences[sender],
                    destination=dest,
                    amount=Amount.from_value(XRP, 1 + (close_index % 5)),
                )
                node.submit(tx)
                report.payments_submitted += 1
            report.closes_attempted += 1
            closed = node.close_ledger()
            if closed is not None:
                report.ledgers_closed += 1
                if closed.validated:
                    report.validated_closes += 1
                report.payments_applied += closed.success_count
    server.flush()

    report.degraded_closes = node.degraded_closes
    report.failed_closes = node.failed_closes
    report.round_retries = node.round_retries
    report.stream_relayed = server.relayed
    report.stream_replayed = server.replayed
    report.stream_reconnects = server.reconnects
    report.duplicates_dropped = collector.duplicates_dropped
    report.counters = injector.counters

    totals = collector.total_counts()
    valids = collector.valid_counts(node.validated_hashes)
    byzantine = plan.byzantine_names()
    labs = set(DRILL_RIPPLE_LABS)
    for name in names:
        report.health.append(
            ValidatorHealth(
                name=name,
                total_pages=totals.get(name, 0),
                valid_pages=valids.get(name, 0),
                is_ripple_labs=name in labs,
                is_byzantine=name in byzantine,
            )
        )
    return report
