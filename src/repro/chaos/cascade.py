"""Liquidity-cascade stress scenarios over the credit network.

Table II is one point: *all* market makers fail at once and 11.2 % of
payments survive.  The cascade scenarios turn that point into a curve —
how fast does deliverability collapse as intermediaries fail? — by
removing intermediaries in **waves** ordered by concentration rank and
measuring the four-dimension health report
(:mod:`repro.analysis.health`) after every wave:

* ``outage`` — market makers fail in waves, most-active first (offer
  placement rank, the 50/75/87 % concentration order).  Each wave
  re-runs the Table II counterfactual replay with the failed makers
  banned from relaying and their order-book offers cancelled; the final
  wave removes every maker and reproduces Table II exactly.
* ``gateway-default`` — gateways default in waves, largest issuer
  first (outstanding-IOU rank).  A defaulted gateway stops relaying, so
  its issuances stop circulating; the books stay up.
* ``unwind`` — an ADL-style forced unwind: each round the most-utilized
  decile of credited trust lines is liquidated (debt written off, limit
  withdrawn — :meth:`LedgerState.close_trust_line`) and the trusters
  that ate losses cut their remaining limits proportionally, feeding
  the next round.  No replay; the cascade acts on the end-of-history
  ledger directly.

Importing this module registers the ``cascade`` artifact.  Like
``table2``, the simulation is inherently sequential and runs in
``prepare``; only the outcome tally (payment deliveries + settlability
probes, one flat stream tagged by wave) shards — any contiguous
partition merges bit-for-bit identically to the serial compute.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.health import (
    DEFAULT_PAIR_SAMPLE,
    DEFAULT_TARGET_AMOUNT,
    HealthReport,
    IssuerConcentration,
    LiquidityDistribution,
    SettlabilityProbe,
    UtilizationProfile,
    issuer_concentration,
    liquidity_distribution,
    render_health,
    settlability_outcomes,
    utilization_profile,
)
from repro.analysis.market_makers import ReplayResult, replay_with_state
from repro.api.artifacts import _sequence_shards, history_for
from repro.api.registry import (
    ArtifactError,
    ArtifactResult,
    ShardedCompute,
    register,
)
from repro.api.request import ArtifactRequest
from repro.ledger.accounts import AccountID
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency, eur_value
from repro.ledger.state import LedgerState
from repro.obs.metrics import METRICS
from repro.synthetic.generator import SyntheticHistory

#: The cascade kinds the artifact accepts (``--kind``).
CASCADE_KINDS = ("outage", "gateway-default", "unwind")
DEFAULT_KIND = "outage"
DEFAULT_WAVES = 4

#: Fraction of credited lines the unwind liquidates per round (top of the
#: utilization rank — ADL liquidates the most-leveraged books first).
UNWIND_CLOSE_FRACTION = 0.1

_KIND_TITLES = {
    "outage": "market-maker outage",
    "gateway-default": "gateway default",
    "unwind": "forced unwind (ADL)",
}


@dataclass(frozen=True)
class CascadeWave:
    """One wave of the cascade: what failed and the health that remained."""

    index: int
    label: str
    #: Cumulative intermediaries removed (or trust lines unwound).
    removed: int
    #: Table II-style replay tally; ``None`` for the unwind (no replay).
    delivery: Optional[ReplayResult]
    health: HealthReport


@dataclass(frozen=True)
class CascadeReport:
    """The full collapse curve: one :class:`CascadeWave` per wave."""

    kind: str
    pairs: int
    amount: float
    waves: Tuple[CascadeWave, ...]

    @property
    def final(self) -> CascadeWave:
        return self.waves[-1]


# Simulation ------------------------------------------------------------------


@dataclass(frozen=True)
class _WaveDraft:
    """A wave with the tally-independent health dimensions filled in."""

    index: int
    label: str
    removed: int
    has_delivery: bool
    liquidity: LiquidityDistribution
    issuers: IssuerConcentration
    utilization: UtilizationProfile


@dataclass
class CascadeContext:
    """Everything the merge needs: wave skeletons + the tagged stream."""

    kind: str
    pairs: int
    amount: float
    drafts: List[_WaveDraft]
    #: Flat outcome stream, one tuple per payment/probe:
    #: ``(wave, "pay", is_cross_currency, delivered)`` or
    #: ``(wave, "probe", settlable, False)``.
    stream: List[Tuple[int, str, bool, bool]]


def rank_market_makers(history: SyntheticHistory) -> List[AccountID]:
    """Makers by offer-placement rank (most active first, address ties)."""
    counts: Dict[AccountID, int] = {}
    for record in history.offer_records:
        counts[record.owner] = counts.get(record.owner, 0) + 1
    return sorted(
        history.cast.market_maker_accounts(),
        key=lambda account: (-counts.get(account, 0), account.address),
    )


def rank_gateways(history: SyntheticHistory) -> List[AccountID]:
    """Gateways by outstanding-IOU rank (largest issuer first)."""
    outstanding: Dict[AccountID, float] = {}
    for line in history.state.iter_trustlines():
        value = line.balance.to_float() * eur_value(line.currency)
        if value > 0.0:
            outstanding[line.trustee] = outstanding.get(line.trustee, 0.0) + value
    return sorted(
        history.cast.gateway_accounts(),
        key=lambda account: (-outstanding.get(account, 0.0), account.address),
    )


def _record_wave(
    context: CascadeContext,
    draft: _WaveDraft,
    state: LedgerState,
    wallets: Sequence[AccountID],
    outcomes: Optional[List[Tuple[bool, bool]]],
    banned: Optional[set],
    seed: int,
) -> None:
    """Probe settlability, stream the wave's outcomes, emit live gauges."""
    probes = settlability_outcomes(
        state,
        wallets,
        pairs=context.pairs,
        amount=context.amount,
        seed=seed,
        banned=banned,
    )
    if outcomes is not None:
        for is_cross, delivered in outcomes:
            context.stream.append((draft.index, "pay", is_cross, delivered))
    for settlable in probes:
        context.stream.append((draft.index, "probe", bool(settlable), False))
    context.drafts.append(draft)
    METRICS.gauge("cascade.wave", float(draft.index))
    if probes:
        METRICS.gauge(
            "cascade.settlable_fraction", sum(probes) / len(probes)
        )
    if outcomes:
        delivered = sum(1 for _, ok in outcomes if ok)
        METRICS.gauge("cascade.delivery_rate", delivered / len(outcomes))


def _simulate_removal(
    context: CascadeContext,
    history: SyntheticHistory,
    ranked: Sequence[AccountID],
    noun: str,
    waves: int,
    seed: int,
    remove_offers: bool,
) -> None:
    """Waves of intermediary removal by rank; wave 0 is the intact control."""
    wallets = [user.account for user in history.cast.users]
    for wave in range(waves + 1):
        if wave == 0:
            prefix: List[AccountID] = []
            outcomes, state = replay_with_state(
                history, remove_market_makers=False
            )
            label = "intact"
        else:
            size = min(len(ranked), math.ceil(wave * len(ranked) / waves))
            prefix = list(ranked[:size])
            banned = set(prefix)
            outcomes, state = replay_with_state(
                history,
                banned=banned,
                remove_offers_of=banned if remove_offers else set(),
            )
            label = f"{size}/{len(ranked)} {noun} out"
        draft = _WaveDraft(
            index=wave,
            label=label,
            removed=len(prefix),
            has_delivery=True,
            liquidity=liquidity_distribution(state, wallets),
            issuers=issuer_concentration(state),
            utilization=utilization_profile(state),
        )
        _record_wave(
            context, draft, state, wallets, outcomes, set(prefix), seed
        )


def _unwind_round(state: LedgerState) -> int:
    """Liquidate the most-utilized decile of credited lines; deleverage.

    Every closed line's balance is written off against the truster, and
    each truster that ate losses scales its remaining limits down by its
    loss share — shrinking limits raises the survivors' utilization, so
    the next round's liquidation front moves deeper into the book.
    Returns the number of lines closed (0 when nothing is credited).
    """
    candidates: List[Tuple[float, AccountID, AccountID, Currency]] = []
    for line in state.iter_trustlines():
        limit = line.limit.to_float()
        balance = line.balance.to_float()
        if limit <= 0.0 or balance <= 0.0:
            continue
        utilization = min(1.0, balance / limit)
        candidates.append((utilization, line.truster, line.trustee, line.currency))
    if not candidates:
        return 0
    candidates.sort(
        key=lambda entry: (
            -entry[0],
            entry[1].address,
            entry[2].address,
            entry[3].code,
        )
    )
    to_close = max(1, int(len(candidates) * UNWIND_CLOSE_FRACTION))
    losses: Dict[AccountID, float] = {}
    for _, truster, trustee, currency in candidates[:to_close]:
        value = state.close_trust_line(truster, trustee, currency)
        losses[truster] = losses.get(truster, 0.0) + value * eur_value(currency)
    for truster in sorted(losses, key=lambda account: account.address):
        loss = losses[truster]
        extended = sum(
            line.limit.to_float() * eur_value(line.currency)
            for line in state.lines_trusted_by(truster)
            if line.limit.to_float() > 0.0
        )
        if loss <= 0.0 or extended <= 0.0:
            continue
        scale = max(0.0, 1.0 - loss / extended)
        if scale >= 1.0:
            continue
        for line in list(state.lines_trusted_by(truster)):
            limit = line.limit.to_float()
            if limit <= 0.0:
                continue
            state.set_trust(
                truster,
                line.trustee,
                Amount.from_value(line.currency, limit * scale),
            )
    return to_close


def _simulate_unwind(
    context: CascadeContext,
    history: SyntheticHistory,
    waves: int,
    seed: int,
) -> None:
    """ADL-style rounds on the end-of-history ledger (no replay)."""
    state = copy.deepcopy(history.state)
    wallets = [user.account for user in history.cast.users]
    unwound = 0
    for round_index in range(waves + 1):
        if round_index == 0:
            label = "intact"
        else:
            closed = _unwind_round(state)
            if closed == 0:
                break
            unwound += closed
            label = f"round {round_index}: {closed} lines unwound"
        draft = _WaveDraft(
            index=round_index,
            label=label,
            removed=unwound,
            has_delivery=False,
            liquidity=liquidity_distribution(state, wallets),
            issuers=issuer_concentration(state),
            utilization=utilization_profile(state),
        )
        _record_wave(context, draft, state, wallets, None, None, seed)


def run_cascade(
    history: SyntheticHistory,
    kind: str = DEFAULT_KIND,
    waves: int = DEFAULT_WAVES,
    pairs: int = DEFAULT_PAIR_SAMPLE,
    amount: float = DEFAULT_TARGET_AMOUNT,
    seed: int = 0,
) -> CascadeReport:
    """Run one cascade end to end (library entry point)."""
    context = simulate_cascade(history, kind, waves, pairs, amount, seed)
    return _finish_cascade(context, tally_cascade_shard(context.stream)).data


def simulate_cascade(
    history: SyntheticHistory,
    kind: str,
    waves: int,
    pairs: int,
    amount: float,
    seed: int,
) -> CascadeContext:
    """The sequential part: wave simulation + the shardable stream."""
    if kind not in CASCADE_KINDS:
        raise ArtifactError(
            f"unknown cascade kind {kind!r}; known: {', '.join(CASCADE_KINDS)}"
        )
    if waves < 1:
        raise ArtifactError("a cascade needs at least one wave")
    context = CascadeContext(
        kind=kind, pairs=pairs, amount=amount, drafts=[], stream=[]
    )
    if kind == "outage":
        _simulate_removal(
            context, history, rank_market_makers(history), "makers",
            waves, seed, remove_offers=True,
        )
    elif kind == "gateway-default":
        _simulate_removal(
            context, history, rank_gateways(history), "gateways",
            waves, seed, remove_offers=False,
        )
    else:
        _simulate_unwind(context, history, waves, seed)
    return context


# Sharded tally ---------------------------------------------------------------


def tally_cascade_shard(
    entries: Sequence[Tuple[int, str, bool, bool]],
) -> Dict[int, List[int]]:
    """Tally a slice of the outcome stream per wave (pure, shardable).

    Counts are ``[cross_submitted, cross_delivered, single_submitted,
    single_delivered, probe_pairs, probe_settlable]``.
    """
    totals: Dict[int, List[int]] = {}
    for wave, channel, flag_a, flag_b in entries:
        counts = totals.setdefault(wave, [0, 0, 0, 0, 0, 0])
        if channel == "pay":
            offset = 0 if flag_a else 2
            counts[offset] += 1
            if flag_b:
                counts[offset + 1] += 1
        else:
            counts[4] += 1
            if flag_a:
                counts[5] += 1
    return totals


def merge_cascade_tallies(
    partials: Sequence[Dict[int, List[int]]],
) -> Dict[int, List[int]]:
    """Sum per-shard wave tallies (integer addition — order-independent)."""
    totals: Dict[int, List[int]] = {}
    for partial in partials:
        for wave, counts in partial.items():
            slot = totals.setdefault(wave, [0, 0, 0, 0, 0, 0])
            for position, value in enumerate(counts):
                slot[position] += value
    return totals


def _finish_cascade(
    context: CascadeContext, totals: Dict[int, List[int]]
) -> ArtifactResult:
    """Install the tallies into the wave skeletons; build the result.

    Both the serial compute and the sharded merge end here, so their
    payloads — and their manifest/metrics annotations — are identical by
    construction.
    """
    waves: List[CascadeWave] = []
    for draft in context.drafts:
        counts = totals.get(draft.index, [0, 0, 0, 0, 0, 0])
        delivery = None
        if draft.has_delivery:
            delivery = ReplayResult()
            delivery.cross_currency.submitted = counts[0]
            delivery.cross_currency.delivered = counts[1]
            delivery.single_currency.submitted = counts[2]
            delivery.single_currency.delivered = counts[3]
        health = HealthReport(
            liquidity=draft.liquidity,
            issuers=draft.issuers,
            utilization=draft.utilization,
            settlability=SettlabilityProbe(
                pairs=counts[4], settlable=counts[5], amount=context.amount
            ),
        )
        waves.append(
            CascadeWave(
                index=draft.index,
                label=draft.label,
                removed=draft.removed,
                delivery=delivery,
                health=health,
            )
        )
    report = CascadeReport(
        kind=context.kind,
        pairs=context.pairs,
        amount=context.amount,
        waves=tuple(waves),
    )
    series = []
    for wave in report.waves:
        entry: Dict[str, object] = {
            "wave": wave.index,
            "label": wave.label,
            "removed": wave.removed,
            "health": wave.health.as_dict(),
        }
        if wave.delivery is not None:
            total = wave.delivery.total
            entry["delivery"] = {
                "submitted": total.submitted,
                "delivered": total.delivered,
                "rate": total.delivery_rate,
            }
        series.append(entry)
    final = report.final
    metrics: Dict[str, object] = {
        "waves": len(report.waves),
        "final_settlable_fraction": final.health.settlability.fraction,
    }
    if final.delivery is not None:
        metrics["final_delivery_rate"] = final.delivery.total.delivery_rate
    return ArtifactResult(
        data=report,
        metrics=metrics,
        manifest={"health_series": series},
    )


# Artifact registration -------------------------------------------------------


def _cascade_params(args: ArtifactRequest) -> Tuple[str, int, int, float]:
    kind = args.option("kind") or DEFAULT_KIND
    waves = args.option("waves") or DEFAULT_WAVES
    pairs = args.option("pairs") or DEFAULT_PAIR_SAMPLE
    amount = float(args.option("amount") or DEFAULT_TARGET_AMOUNT)
    return kind, int(waves), int(pairs), amount


def _prepare_cascade(args: ArtifactRequest) -> CascadeContext:
    kind, waves, pairs, amount = _cascade_params(args)
    return simulate_cascade(
        history_for(args), kind, waves, pairs, amount, seed=args.seed
    )


def _compute_cascade(args: ArtifactRequest) -> ArtifactResult:
    context = _prepare_cascade(args)
    return _finish_cascade(context, tally_cascade_shard(context.stream))


def render_cascade(report: CascadeReport, args: ArtifactRequest = None) -> str:
    """The collapse curve plus the final wave's full health block."""
    lines = [
        f"Liquidity cascade — {_KIND_TITLES.get(report.kind, report.kind)}",
        f"  {len(report.waves) - 1} waves   {report.pairs} sampled pairs   "
        f"target amount {report.amount:g}",
        "",
        "Deliverability collapse",
        f"  {'wave':>4s}  {'scenario':28s} {'delivered':>11s} {'rate':>7s}"
        f" {'settlable':>10s} {'over-ext':>9s}",
    ]
    for wave in report.waves:
        if wave.delivery is not None:
            total = wave.delivery.total
            delivered = f"{total.delivered}/{total.submitted}"
            rate = f"{total.delivery_rate:6.1%}"
        else:
            delivered, rate = "—", "     —"
        probe = wave.health.settlability
        overext = wave.health.utilization.overextended_fraction
        lines.append(
            f"  {wave.index:4d}  {wave.label:28s} {delivered:>11s} {rate:>7s}"
            f" {probe.fraction:>9.1%} {overext:>8.1%}"
        )
    final = report.final
    lines += [
        "",
        render_health(
            final.health, title=f"Wave {final.index} health — {final.label}"
        ),
    ]
    if report.kind == "outage":
        lines += [
            "",
            "The final wave bans every maker and cancels their offers: "
            "Table II's",
            "counterfactual (paper: 11.2 % of payments deliver).",
        ]
    return "\n".join(lines)


register(
    "cascade",
    "liquidity-cascade collapse curve (outage / gateway-default / unwind)",
    _compute_cascade,
    lambda payload, args: render_cascade(payload, args),
    # The wave simulation is stateful and runs serially in prepare (like
    # the table2 replay); only the per-wave outcome tally shards.
    sharded=ShardedCompute(
        prepare=_prepare_cascade,
        shards=lambda context, n: _sequence_shards(context.stream, n),
        compute_shard=tally_cascade_shard,
        merge=lambda partials, context: _finish_cascade(
            context, merge_cascade_tallies(partials)
        ),
    ),
)

__all__ = [
    "CASCADE_KINDS",
    "CascadeReport",
    "CascadeWave",
    "rank_gateways",
    "rank_market_makers",
    "render_cascade",
    "run_cascade",
]
