"""Command-line interface: regenerate any paper artifact from a terminal.

::

    python -m repro figures            # list the artifacts
    python -m repro fig3               # information gain (Fig. 3)
    python -m repro fig2 --period jul2016 --scale 600
    python -m repro table2
    python -m repro chaos --plan partition --seed 3
    python -m repro generate --out ledger.jsonl.gz --payments 20000
    python -m repro attack --seed 3    # run one latte attack
    python -m repro artifact fig3 --out fig3.txt --trace
    python -m repro metrics --artifact fig3 --format prom
    python -m repro manifest fig3.txt.manifest.json
    python -m repro serve --socket /tmp/repro.sock   # artifact daemon

Artifact commands (``fig2``–``fig7``, ``table2``, ``chaos``) dispatch
through the :data:`repro.api.ARTIFACTS` registry — the CLI has no
per-artifact logic of its own.  Every subcommand shares one flag set
(``--seed/--scale/--out/--profile/--trace`` plus ``--payments/
--archive``) via a common parent parser.  The parsed namespace never
crosses the API boundary: each dispatch builds a typed
:class:`~repro.api.request.ArtifactRequest` — the same object the
``serve`` daemon decodes from a JSON body — and hands that to the
registry.

Observability (:mod:`repro.obs`) hangs off two flags: ``--trace [PATH]``
collects a structured span trace and enables the metrics registry, and
any run that writes a file (``--out`` or ``--trace``) seals a
``*.manifest.json`` run manifest next to it.  With both flags absent the
artifact bytes are identical to a build without the observability layer.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

import repro.chaos.report  # noqa: F401  (registers the 'chaos' artifact)
from repro.api import ARTIFACTS, ArtifactRequest, artifact, economy_config
from repro.chaos.cascade import CASCADE_KINDS  # registers 'cascade'
from repro.durability import atomic_write
from repro.errors import AnalysisError
from repro.api.artifacts import dataset_for as _dataset_for  # noqa: F401
from repro.chaos.plan import PLANS
from repro.chaos.scenarios import SCENARIOS
from repro.obs.manifest import (
    RUN,
    build_manifest,
    deterministic_view,
    manifest_destination,
    output_entry,
    request_fingerprint,
    validate_manifest,
    write_run_manifest,
)
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.stream.periods import PERIODS
from repro.synthetic.generator import generate_history


def cmd_figures(_args: argparse.Namespace) -> int:
    for name, entry in ARTIFACTS.items():
        print(f"  {name:7s} {entry.description}")
    return 0


def _trace_destination(args: argparse.Namespace, name: str) -> Optional[str]:
    """Where ``--trace`` goes: explicit path, or derived from ``--out``."""
    trace = getattr(args, "trace", None)
    if trace is None:
        return None
    if trace != "auto":
        return trace
    if getattr(args, "out", None):
        return f"{args.out}.trace.jsonl"
    return f"{name}.trace.jsonl"


def cmd_artifact(args: argparse.Namespace) -> int:
    """Dispatch any registered artifact: compute, render, print, maybe save.

    A run that writes anything (``--out`` and/or ``--trace``) is sealed
    with a run manifest — ``<out>.manifest.json`` (anchored on the trace
    path when there is no ``--out``) recording the invocation, the
    deterministic phase-span rollup, ingest/degradation events, and the
    sha256 of every output.
    """
    name = getattr(args, "name", None) or args.command
    trace_path = _trace_destination(args, name)
    out_path = getattr(args, "out", None)
    observing = bool(trace_path or out_path)
    # Restore the prior enablement on exit: main() is re-entrant (tests,
    # embedding), so one --trace run must not leave the process-wide
    # registries hot for the next caller.
    tracer_was_enabled = TRACER.enabled
    metrics_were_enabled = METRICS.enabled
    if observing:
        RUN.reset()
        TRACER.reset()
        TRACER.enable()
    if trace_path:
        METRICS.enable()
    try:
        started_at = time.time()
        t0 = time.perf_counter()
        try:
            # The parsed namespace stops here: computation and rendering
            # run on the typed request — the same currency the serve
            # daemon builds from a JSON body — and the manifest
            # fingerprint is computed *before* any work starts.
            request = ArtifactRequest.from_namespace(args, name=name)
            fingerprint = request_fingerprint(request)
            entry = artifact(name)
            result = entry.compute_payload(request)
            text = entry.render_text(result, request)
        except AnalysisError as exc:  # ArtifactError/IntegrityError included
            print(f"{name}: {exc}", file=sys.stderr)
            return 2
        duration = time.perf_counter() - t0
        print(text)
        outputs = []
        if out_path:
            # Atomic + manifest-sealed: a crash mid-save never leaves a
            # half-rendered figure where a complete one used to be.
            with atomic_write(
                out_path, manifest=True, fmt="repro-artifact/1"
            ) as handle:
                handle.write(text + "\n")
            print(f"wrote {out_path}", file=sys.stderr)
            outputs.append(output_entry(out_path, kind="artifact"))
        for extra in result.output_paths:
            if os.path.exists(extra):
                outputs.append(output_entry(extra, kind="aux"))
        if trace_path:
            spans = TRACER.write(trace_path)
            print(f"wrote {trace_path} ({spans} spans)", file=sys.stderr)
            outputs.append(
                output_entry(trace_path, kind="trace", volatile=True)
            )
        if observing:
            payload = build_manifest(
                name, request, text, outputs, started_at, duration,
                result=result, fingerprint=fingerprint,
            )
            destination = manifest_destination(out_path or trace_path)
            write_run_manifest(destination, payload)
            print(f"wrote {destination}", file=sys.stderr)
        return 0
    finally:
        TRACER.enabled = tracer_was_enabled
        METRICS.enabled = metrics_were_enabled


def cmd_metrics(args: argparse.Namespace) -> int:
    """Expose the metrics registry, optionally after computing an artifact."""
    METRICS.enable()
    name = getattr(args, "artifact", None)
    if name:
        try:
            request = ArtifactRequest.from_namespace(args, name=name)
            artifact(name).compute_payload(request)
        except AnalysisError as exc:
            print(f"{name}: {exc}", file=sys.stderr)
            return 2
    if args.format == "json":
        print(METRICS.to_json())
    else:
        print(METRICS.to_prom(), end="")
    return 0


def cmd_manifest(args: argparse.Namespace) -> int:
    """Validate a run manifest against the shipped schema."""
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"manifest: {exc}", file=sys.stderr)
        return 2
    errors = validate_manifest(payload)
    if errors:
        for error in errors:
            print(f"manifest: {error}", file=sys.stderr)
        return 1
    if getattr(args, "deterministic", False):
        print(json.dumps(deterministic_view(payload), indent=2, sort_keys=True))
    else:
        print(f"{args.path}: valid "
              f"(manifest_version {payload['manifest_version']}, "
              f"artifact {payload['artifact']})")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.analysis.archive import dump_archive

    if not args.out:
        print("generate: --out is required", file=sys.stderr)
        return 2
    history = generate_history(economy_config(args))
    written = dump_archive(history.records, args.out)
    print(f"wrote {written} payments to {args.out}")
    return 0


def cmd_defenses(args: argparse.Namespace) -> int:
    from repro.core.defenses import standard_defense_suite
    from repro.core.resolution import FIGURE3_FEATURE_LISTS

    _, dataset = _dataset_for(args)
    label = FIGURE3_FEATURE_LISTS[0].label()
    print("De-anonymization countermeasures (IG at full resolution):")
    for report in standard_defense_suite(dataset):
        print(f"  {report.name:22s} {report.ig_before[label]:6.2f}% -> "
              f"{report.ig_after[label]:6.2f}%")
        for cost, value in report.costs.items():
            print(f"      {cost}: {value:,.2f}")
    return 0


def cmd_bench_node(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import run_node

    out = args.out or "BENCH_node.json"
    payload = run_node(Path(out))
    print(json.dumps(payload["speedup"], indent=2, sort_keys=True))
    print(f"wrote {out}")
    return 0


def cmd_bench_smoke(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import gate_payload, run_pipeline

    out = args.out or "BENCH_pipeline.json"
    # Serial-vs-parallel fig3 is part of the smoke run: 4 workers unless
    # the user asks otherwise (--jobs 1 measures the serial path twice).
    payload = run_pipeline(Path(out), jobs=getattr(args, "jobs", None) or 4)
    print(json.dumps(payload["speedup"], indent=2, sort_keys=True))
    print(f"wrote {out}")
    failures = gate_payload(payload)
    if failures:
        for failure in failures:
            print(f"bench gate FAILED: {failure}", file=sys.stderr)
        return 1
    if (payload.get("cpu_count") or 1) <= 1:
        print(
            "bench gate: figure3_parallel_x not gated on a 1-core host "
            "(worker pool is pure overhead here; ratio is not meaningful)"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant artifact daemon until shutdown.

    Binds a Unix socket (``--socket``) or TCP port (``--port``); each
    connection carries one JSON request line and receives one envelope
    line back.  Results are cached by manifest fingerprint in the
    durable store (``--cache-dir``, default ``.repro-serve-cache``) and
    identical in-flight requests share one computation.
    """
    from repro.serve.daemon import ArtifactServer, run_server

    if not args.socket and not args.port:
        print("serve: need --socket PATH or --port N", file=sys.stderr)
        return 2
    app = ArtifactServer(
        cache_dir=getattr(args, "cache_dir", None),
        default_jobs=getattr(args, "jobs", None),
        ingest_state_dir=getattr(args, "ingest_state_dir", None),
    )
    return run_server(
        app,
        socket_path=args.socket,
        host=args.host,
        port=args.port or 0,
        drain_timeout=getattr(args, "drain_timeout", 30.0),
    )


def cmd_ingest(args: argparse.Namespace) -> int:
    """Run the event-sourced live ingest pipeline until the source drains.

    Tails a replayed archive (``--archive``) through the WAL →
    OnlineState → snapshot loop under the supervisor: accepted events
    are fsynced before they are applied, snapshots seal on a cadence,
    and a ``kill -9`` at any instant resumes — from the same state dir —
    to a state digest identical to an uninterrupted run.  SIGTERM/SIGINT
    request a graceful drain: the WAL is flushed, a final snapshot
    sealed, and the process exits 0.
    """
    import itertools
    import signal

    from repro.errors import IngestError
    from repro.online import IngestConfig, archive_event_source
    from repro.online.supervisor import IngestSupervisor

    if not args.archive:
        print("ingest: --archive PATH is required", file=sys.stderr)
        return 2
    config = IngestConfig(
        state_dir=args.state_dir,
        snapshot_every=args.snapshot_every,
        wal_segment_events=args.wal_segment_events,
        keep_snapshots=args.keep_snapshots,
        status_every=args.status_every,
        fsync=not args.no_fsync,
    )

    def source(start_seq: int):
        events = archive_event_source(args.archive, start_seq)
        if args.events is not None:
            remaining = max(0, args.events - start_seq)
            events = itertools.islice(events, remaining)
        return events

    supervisor = IngestSupervisor(
        config,
        source,
        max_restarts=args.max_restarts,
        heartbeat_timeout=args.heartbeat_timeout,
    )

    def _drain(_signum, _frame):
        supervisor.request_stop()

    previous = {
        sig: signal.signal(sig, _drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        digest, pipeline = supervisor.run()
    except (IngestError, AnalysisError) as exc:
        print(f"ingest: {exc}", file=sys.stderr)
        return 1
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print(pipeline.state.summary())
    print(f"state digest {digest}")
    print(f"state dir {config.state_dir} "
          f"(wal segments {pipeline.wal.segment_count()}, "
          f"replayed {pipeline.replayed}, restarts {supervisor.restarts})",
          file=sys.stderr)
    return 0


def cmd_rewards(args: argparse.Namespace) -> int:
    from repro.consensus.rewards import compare_policies

    print("Validator reward proposal (Section IV): tax sweep")
    for tax, validators, exposure in compare_policies(
        [0.0, 0.01, 0.05, 0.2], seed=args.seed, epochs=40
    ):
        print(f"  tax {tax:5.2f}/tx -> equilibrium validators {validators:4d}, "
              f"top-3 signature share {exposure:.1%}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.attack import Observation, SideChannelAttack

    history, dataset = _dataset_for(args)
    attack = SideChannelAttack(dataset, history.state if history else None)
    rng = np.random.default_rng(args.seed)
    rows = np.flatnonzero(dataset.kinds == "fiat")
    row = int(rng.choice(rows))
    observation = Observation(
        destination=dataset.accounts[int(dataset.destination_ids[row])],
        currency=dataset.currency_code(int(dataset.currency_ids[row])),
        amount=float(dataset.amounts[row]),
        timestamp=int(dataset.timestamps[row]),
    )
    result = attack.run(observation)
    print(f"observed: {observation.amount:g} {observation.currency} "
          f"-> {observation.destination.short()} @ t={observation.timestamp}")
    if not result.succeeded:
        print(f"ambiguous: {len(result.candidates)} candidate senders")
        return 1
    print(f"identified sender: {result.sender.address}")
    if result.profile is not None:
        profile = result.profile
        print(f"  payments sent/received: {profile.payments_sent}/"
              f"{profile.payments_received}")
        print(f"  total spent (EUR): {profile.total_spent_eur:,.2f}")
    return 0


def _common_parent() -> argparse.ArgumentParser:
    """The flag set every subcommand shares (the unified CLI surface).

    ``--profile`` uses ``SUPPRESS`` so a subcommand parse never clobbers
    the top-level ``--profile`` already recorded in the namespace
    (``python -m repro --profile fig3`` and ``python -m repro fig3
    --profile`` are both accepted).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=20170652,
                        help="master RNG seed (default 20170652)")
    parent.add_argument("--scale", type=int, default=600,
                        help="simulate 1/SCALE of a collection period")
    parent.add_argument("--out", type=str, default=None,
                        help="also write the output to this path")
    parent.add_argument("--payments", type=int, default=12_000,
                        help="synthetic history size (default 12000)")
    parent.add_argument("--archive", type=str, default=None,
                        help="read payments from a dumped archive instead")
    parent.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sharded artifacts "
                             "(default 1 = serial; output is bit-identical "
                             "either way; REPRO_DISABLE_PARALLEL=1 forces "
                             "serial)")
    parent.add_argument("--resume", action="store_true", default=False,
                        help="checkpoint each completed shard under "
                             "$REPRO_RESUME_DIR (default .repro-resume) and "
                             "reload verified checkpoints on rerun — a "
                             "killed --jobs N run recomputes only missing "
                             "shards, bit-for-bit identical to a cold run")
    parent.add_argument("--strict-ingest", action="store_true", default=False,
                        help="fail on the first malformed archive line "
                             "(the default; spelled out for scripts)")
    parent.add_argument("--quarantine", action="store_true", default=False,
                        help="lenient ingest: schema-validate each archive "
                             "line, divert bad ones to "
                             "<archive>.quarantine.jsonl with the reason, "
                             "abort past a 1%% bad-line fraction")
    parent.add_argument("--profile", action="store_true",
                        default=argparse.SUPPRESS,
                        help="collect perf counters/timers and report on exit")
    parent.add_argument("--trace", nargs="?", const="auto", default=None,
                        metavar="PATH",
                        help="write a structured span trace (JSONL) and "
                             "enable metrics; without PATH the trace lands "
                             "next to --out (or ./<artifact>.trace.jsonl)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS'17 Ripple study's tables and figures.",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        default=False,
        help="collect perf counters/timers and print a report on exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    parent = _common_parent()

    sub = subparsers.add_parser("figures", parents=[parent],
                                help="list reproducible artifacts")
    sub.set_defaults(func=cmd_figures)

    # Every registered artifact becomes a subcommand dispatching through
    # the registry; only artifact-specific flags are declared here.
    for name, entry in ARTIFACTS.items():
        sub = subparsers.add_parser(name, parents=[parent],
                                    help=entry.description)
        if name == "fig2":
            sub.add_argument("--period", default=None,
                             choices=[s.key for s in PERIODS])
        elif name == "fig4":
            # Default None, not 25: an explicit default would key the
            # request fingerprint differently from an omitted flag.
            # The renderer applies the paper's top-25 when unset.
            sub.add_argument("--top", type=int, default=None)
        elif name == "fig7":
            sub.add_argument("--top", type=int, default=None)
        elif name == "chaos":
            sub.add_argument("--plan", default="partition",
                             choices=sorted(set(PLANS) | set(SCENARIOS)),
                             help="named fault plan or scenario pack")
            sub.add_argument("--rounds", type=int, default=240,
                             help="ledger-close attempts to drive")
        elif name == "fork_threshold":
            sub.add_argument("--rounds", type=int, default=240,
                             help="ledger-close attempts per sweep point")
        elif name == "health":
            # Defaults stay None (the fig4 --top rule): an explicit
            # default must fingerprint identically to an omitted flag.
            sub.add_argument("--pairs", type=int, default=None,
                             help="settlability probe pair sample size")
            sub.add_argument("--amount", type=float, default=None,
                             help="settlability target amount")
        elif name == "cascade":
            sub.add_argument("--kind", default=None, choices=CASCADE_KINDS,
                             help="cascade scenario kind")
            sub.add_argument("--waves", type=int, default=None,
                             help="removal waves / unwind rounds")
            sub.add_argument("--pairs", type=int, default=None,
                             help="settlability probe pair sample size")
            sub.add_argument("--amount", type=float, default=None,
                             help="settlability target amount")
        sub.set_defaults(func=cmd_artifact)

    sub = subparsers.add_parser("generate", parents=[parent],
                                help="dump a synthetic ledger archive")
    sub.set_defaults(func=cmd_generate)

    sub = subparsers.add_parser("attack", parents=[parent],
                                help="run one latte attack")
    sub.set_defaults(func=cmd_attack)

    sub = subparsers.add_parser(
        "defenses", parents=[parent],
        help="evaluate de-anonymization countermeasures",
    )
    sub.set_defaults(func=cmd_defenses)

    sub = subparsers.add_parser(
        "rewards", parents=[parent],
        help="simulate the Section IV validator-reward proposal",
    )
    sub.set_defaults(func=cmd_rewards)

    sub = subparsers.add_parser(
        "bench-node", parents=[parent],
        help="measure engine/path-finder throughput",
    )
    sub.set_defaults(func=cmd_bench_node)

    sub = subparsers.add_parser(
        "bench-smoke", parents=[parent],
        help="measure the reduced generation->fig3 pipeline",
    )
    sub.set_defaults(func=cmd_bench_smoke)

    sub = subparsers.add_parser(
        "artifact", parents=[parent],
        help="run any registered artifact by name (scripting/CI form)",
    )
    sub.add_argument("name", help="registered artifact name (see 'figures')")
    sub.set_defaults(func=cmd_artifact)

    sub = subparsers.add_parser(
        "serve", parents=[parent],
        help="run the multi-tenant artifact daemon (manifest-keyed cache)",
    )
    sub.add_argument("--socket", default=None, metavar="PATH",
                     help="bind a unix stream socket at PATH")
    sub.add_argument("--host", default="127.0.0.1",
                     help="TCP bind address (with --port; default 127.0.0.1)")
    sub.add_argument("--port", type=int, default=None,
                     help="bind a TCP port instead of a unix socket")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="durable result store root (default "
                          ".repro-serve-cache or $REPRO_SERVE_CACHE)")
    sub.add_argument("--ingest-state-dir", default=None, metavar="DIR",
                     help="default state dir the live_status op reads "
                          "(a running 'repro ingest' writes it)")
    sub.add_argument("--drain-timeout", type=float, default=30.0,
                     metavar="SEC",
                     help="max wait for in-flight requests on shutdown/"
                          "SIGTERM (default 30s)")
    sub.set_defaults(func=cmd_serve)

    sub = subparsers.add_parser(
        "ingest", parents=[parent],
        help="run the crash-safe live ingest pipeline over an archive",
    )
    sub.add_argument("--state-dir", default=".repro-ingest", metavar="DIR",
                     help="WAL + snapshot + status root "
                          "(default .repro-ingest)")
    sub.add_argument("--snapshot-every", type=int, default=1000,
                     metavar="N", help="events between sealed snapshots "
                                       "(default 1000; 0 disables)")
    sub.add_argument("--wal-segment-events", type=int, default=512,
                     metavar="N", help="events per WAL segment before it "
                                       "is sealed (default 512)")
    sub.add_argument("--keep-snapshots", type=int, default=3, metavar="N",
                     help="verified snapshots retained (default 3)")
    sub.add_argument("--status-every", type=int, default=200, metavar="N",
                     help="events between status.json refreshes "
                          "(default 200)")
    sub.add_argument("--events", type=int, default=None, metavar="N",
                     help="stop after the first N archive events")
    sub.add_argument("--max-restarts", type=int, default=5, metavar="N",
                     help="supervisor restart budget (default 5)")
    sub.add_argument("--heartbeat-timeout", type=float, default=30.0,
                     metavar="SEC",
                     help="watchdog stall threshold (default 30s)")
    sub.add_argument("--no-fsync", action="store_true", default=False,
                     help="skip per-event fsync (tests only; weakens the "
                          "crash guarantee)")
    sub.set_defaults(func=cmd_ingest)

    sub = subparsers.add_parser(
        "metrics", parents=[parent],
        help="print the metrics exposition (optionally after an artifact)",
    )
    sub.add_argument("--artifact", default=None, metavar="NAME",
                     help="compute this artifact first, then expose")
    sub.add_argument("--format", choices=("prom", "json"), default="prom",
                     help="exposition format (default prom)")
    sub.set_defaults(func=cmd_metrics)

    sub = subparsers.add_parser(
        "manifest", parents=[parent],
        help="validate a run manifest against the shipped schema",
    )
    sub.add_argument("path", help="path to a *.manifest.json file")
    sub.add_argument("--deterministic", action="store_true", default=False,
                     help="print the strategy-independent view instead "
                          "(serial and --jobs N runs must agree on it)")
    sub.set_defaults(func=cmd_manifest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # The human-readable counter report prints only when profiling was
    # asked for (flag or env) — --trace also enables the registry, but
    # its consumers are the manifest and the 'metrics' exposition.
    profiling = (
        getattr(args, "profile", False)
        or os.environ.get("REPRO_PROFILE", "") not in ("", "0")
    )
    if profiling:
        METRICS.enable()
    try:
        return args.func(args)
    finally:
        if profiling and METRICS.enabled:
            print(METRICS.report(), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
