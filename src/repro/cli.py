"""Command-line interface: regenerate any paper artifact from a terminal.

::

    python -m repro figures            # list the artifacts
    python -m repro fig3               # information gain (Fig. 3)
    python -m repro fig2 --period jul2016 --scale 600
    python -m repro table2
    python -m repro generate --out ledger.jsonl.gz --payments 20000
    python -m repro attack --seed 3    # run one latte attack

Every command works on a freshly generated synthetic history (cached per
process) or, where it makes sense, on a previously dumped archive.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import (
    TransactionDataset,
    currency_ranking,
    figure5_curves,
    offer_concentration,
    path_structure,
    table2,
    top_intermediaries,
)
from repro.analysis.archive import dump_archive, load_archive
from repro.analysis.report import (
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table2,
)
from repro.core.deanonymizer import Deanonymizer
from repro.core.robustness import run_period
from repro.perf import PERF
from repro.stream.periods import PERIODS, period
from repro.synthetic.config import EconomyConfig
from repro.synthetic.generator import generate_history

ARTIFACTS = {
    "fig2": "validator activity over the three collection periods",
    "fig3": "information gain per feature list",
    "fig4": "most used currencies",
    "fig5": "survival functions of payment amounts",
    "fig6": "payment path structure",
    "fig7": "top-50 intermediaries",
    "table2": "delivery without market makers",
}


def _config(args: argparse.Namespace) -> EconomyConfig:
    return EconomyConfig(
        seed=args.seed,
        n_payments=args.payments,
        n_users=max(10, args.payments // 33),
        n_offers=args.payments * 4,
    )


def _dataset_for(args: argparse.Namespace):
    if getattr(args, "archive", None):
        records = load_archive(args.archive)
        return None, TransactionDataset.from_records(records)
    history = generate_history(_config(args))
    return history, TransactionDataset.from_records(history.records)


def cmd_figures(_args: argparse.Namespace) -> int:
    for key, description in ARTIFACTS.items():
        print(f"  {key:7s} {description}")
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    keys = [args.period] if args.period else [spec.key for spec in PERIODS]
    for key in keys:
        report = run_period(period(key), scale=1.0 / args.scale, seed=args.seed)
        print(render_figure2(report))
        print()
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    _, dataset = _dataset_for(args)
    print(render_figure3(Deanonymizer(dataset).figure3()))
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    _, dataset = _dataset_for(args)
    print(render_figure4(currency_ranking(dataset), top=args.top))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    _, dataset = _dataset_for(args)
    points = (1e-4, 1e-2, 1.0, 1e2, 1e4, 1e6, 1e8, 1e10)
    print(render_figure5(figure5_curves(dataset), points))
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    _, dataset = _dataset_for(args)
    print(render_figure6(path_structure(dataset)))
    return 0


def cmd_fig7(args: argparse.Namespace) -> int:
    history, _ = _dataset_for(args)
    if history is None:
        print("fig7 needs ledger state; run without --archive", file=sys.stderr)
        return 2
    print(render_figure7(top_intermediaries(history, args.top)))
    concentration = offer_concentration(history.offer_records)
    print(f"\noffer concentration: "
          f"{dict((k, round(v, 3)) for k, v in concentration.shares.items())}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    history, _ = _dataset_for(args)
    if history is None:
        print("table2 needs ledger state; run without --archive", file=sys.stderr)
        return 2
    print(render_table2(table2(history)))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    history = generate_history(_config(args))
    written = dump_archive(history.records, args.out)
    print(f"wrote {written} payments to {args.out}")
    return 0


def cmd_defenses(args: argparse.Namespace) -> int:
    from repro.core.defenses import standard_defense_suite
    from repro.core.resolution import FIGURE3_FEATURE_LISTS

    _, dataset = _dataset_for(args)
    label = FIGURE3_FEATURE_LISTS[0].label()
    print("De-anonymization countermeasures (IG at full resolution):")
    for report in standard_defense_suite(dataset):
        print(f"  {report.name:22s} {report.ig_before[label]:6.2f}% -> "
              f"{report.ig_after[label]:6.2f}%")
        for cost, value in report.costs.items():
            print(f"      {cost}: {value:,.2f}")
    return 0


def cmd_bench_node(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import run_node

    payload = run_node(Path(args.out))
    print(json.dumps(payload["speedup"], indent=2, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


def cmd_bench_smoke(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import run_pipeline

    payload = run_pipeline(Path(args.out))
    print(json.dumps(payload["speedup"], indent=2, sort_keys=True))
    print(f"wrote {args.out}")
    return 0


def cmd_rewards(args: argparse.Namespace) -> int:
    from repro.consensus.rewards import compare_policies

    print("Validator reward proposal (Section IV): tax sweep")
    for tax, validators, exposure in compare_policies(
        [0.0, 0.01, 0.05, 0.2], seed=args.seed, epochs=40
    ):
        print(f"  tax {tax:5.2f}/tx -> equilibrium validators {validators:4d}, "
              f"top-3 signature share {exposure:.1%}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.attack import Observation, SideChannelAttack

    history, dataset = _dataset_for(args)
    attack = SideChannelAttack(dataset, history.state if history else None)
    rng = np.random.default_rng(args.seed)
    rows = np.flatnonzero(dataset.kinds == "fiat")
    row = int(rng.choice(rows))
    observation = Observation(
        destination=dataset.accounts[int(dataset.destination_ids[row])],
        currency=dataset.currency_code(int(dataset.currency_ids[row])),
        amount=float(dataset.amounts[row]),
        timestamp=int(dataset.timestamps[row]),
    )
    result = attack.run(observation)
    print(f"observed: {observation.amount:g} {observation.currency} "
          f"-> {observation.destination.short()} @ t={observation.timestamp}")
    if not result.succeeded:
        print(f"ambiguous: {len(result.candidates)} candidate senders")
        return 1
    print(f"identified sender: {result.sender.address}")
    if result.profile is not None:
        profile = result.profile
        print(f"  payments sent/received: {profile.payments_sent}/"
              f"{profile.payments_received}")
        print(f"  total spent (EUR): {profile.total_spent_eur:,.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS'17 Ripple study's tables and figures.",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect perf counters/timers and print a report on exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser, archive: bool = True) -> None:
        sub.add_argument("--seed", type=int, default=20170652)
        sub.add_argument("--payments", type=int, default=12_000,
                         help="synthetic history size (default 12000)")
        if archive:
            sub.add_argument("--archive", type=str, default=None,
                             help="read payments from a dumped archive instead")

    sub = subparsers.add_parser("figures", help="list reproducible artifacts")
    sub.set_defaults(func=cmd_figures)

    sub = subparsers.add_parser("fig2", help=ARTIFACTS["fig2"])
    sub.add_argument("--period", choices=[s.key for s in PERIODS], default=None)
    sub.add_argument("--scale", type=int, default=600,
                     help="simulate 1/SCALE of the two-week period")
    sub.add_argument("--seed", type=int, default=20170652)
    sub.set_defaults(func=cmd_fig2)

    for key, fn in (("fig3", cmd_fig3), ("fig5", cmd_fig5), ("fig6", cmd_fig6)):
        sub = subparsers.add_parser(key, help=ARTIFACTS[key])
        add_common(sub)
        sub.set_defaults(func=fn)

    sub = subparsers.add_parser("fig4", help=ARTIFACTS["fig4"])
    add_common(sub)
    sub.add_argument("--top", type=int, default=25)
    sub.set_defaults(func=cmd_fig4)

    sub = subparsers.add_parser("fig7", help=ARTIFACTS["fig7"])
    add_common(sub, archive=False)
    sub.add_argument("--top", type=int, default=50)
    sub.set_defaults(func=cmd_fig7)

    sub = subparsers.add_parser("table2", help=ARTIFACTS["table2"])
    add_common(sub, archive=False)
    sub.set_defaults(func=cmd_table2)

    sub = subparsers.add_parser("generate", help="dump a synthetic ledger archive")
    add_common(sub, archive=False)
    sub.add_argument("--out", type=str, required=True)
    sub.set_defaults(func=cmd_generate)

    sub = subparsers.add_parser("attack", help="run one latte attack")
    add_common(sub)
    sub.set_defaults(func=cmd_attack)

    sub = subparsers.add_parser(
        "defenses", help="evaluate de-anonymization countermeasures"
    )
    add_common(sub)
    sub.set_defaults(func=cmd_defenses)

    sub = subparsers.add_parser(
        "rewards", help="simulate the Section IV validator-reward proposal"
    )
    sub.add_argument("--seed", type=int, default=20170652)
    sub.set_defaults(func=cmd_rewards)

    sub = subparsers.add_parser(
        "bench-node", help="measure engine/path-finder throughput"
    )
    sub.add_argument("--out", type=str, default="BENCH_node.json")
    sub.set_defaults(func=cmd_bench_node)

    sub = subparsers.add_parser(
        "bench-smoke", help="measure the reduced generation->fig3 pipeline"
    )
    sub.add_argument("--out", type=str, default="BENCH_pipeline.json")
    sub.set_defaults(func=cmd_bench_smoke)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile:
        PERF.enable()
    try:
        return args.func(args)
    finally:
        # Report whether profiling came from --profile or REPRO_PROFILE=1.
        if PERF.enabled:
            print(PERF.report(), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
