"""Command-line interface: regenerate any paper artifact from a terminal.

::

    python -m repro figures            # list the artifacts
    python -m repro fig3               # information gain (Fig. 3)
    python -m repro fig2 --period jul2016 --scale 600
    python -m repro table2
    python -m repro chaos --plan partition --seed 3
    python -m repro generate --out ledger.jsonl.gz --payments 20000
    python -m repro attack --seed 3    # run one latte attack

Artifact commands (``fig2``–``fig7``, ``table2``, ``chaos``) dispatch
through the :data:`repro.api.ARTIFACTS` registry — the CLI has no
per-artifact logic of its own.  Every subcommand shares one flag set
(``--seed/--scale/--out/--profile`` plus ``--payments/--archive``) via a
common parent parser.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import repro.chaos.report  # noqa: F401  (registers the 'chaos' artifact)
from repro.api import ARTIFACTS, artifact, economy_config
from repro.durability import atomic_write
from repro.errors import AnalysisError
from repro.api.artifacts import dataset_for as _dataset_for  # noqa: F401
from repro.chaos.plan import PLANS
from repro.perf import PERF
from repro.stream.periods import PERIODS
from repro.synthetic.generator import generate_history


def cmd_figures(_args: argparse.Namespace) -> int:
    for name, entry in ARTIFACTS.items():
        print(f"  {name:7s} {entry.description}")
    return 0


def cmd_artifact(args: argparse.Namespace) -> int:
    """Dispatch any registered artifact: compute, render, print, maybe save."""
    try:
        text = artifact(args.command).run(args)
    except AnalysisError as exc:  # ArtifactError/IntegrityError included
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2
    print(text)
    if getattr(args, "out", None):
        # Atomic + manifest-sealed: a crash mid-save never leaves a
        # half-rendered figure where a complete one used to be.
        with atomic_write(
            args.out, manifest=True, fmt="repro-artifact/1"
        ) as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.analysis.archive import dump_archive

    if not args.out:
        print("generate: --out is required", file=sys.stderr)
        return 2
    history = generate_history(economy_config(args))
    written = dump_archive(history.records, args.out)
    print(f"wrote {written} payments to {args.out}")
    return 0


def cmd_defenses(args: argparse.Namespace) -> int:
    from repro.core.defenses import standard_defense_suite
    from repro.core.resolution import FIGURE3_FEATURE_LISTS

    _, dataset = _dataset_for(args)
    label = FIGURE3_FEATURE_LISTS[0].label()
    print("De-anonymization countermeasures (IG at full resolution):")
    for report in standard_defense_suite(dataset):
        print(f"  {report.name:22s} {report.ig_before[label]:6.2f}% -> "
              f"{report.ig_after[label]:6.2f}%")
        for cost, value in report.costs.items():
            print(f"      {cost}: {value:,.2f}")
    return 0


def cmd_bench_node(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import run_node

    out = args.out or "BENCH_node.json"
    payload = run_node(Path(out))
    print(json.dumps(payload["speedup"], indent=2, sort_keys=True))
    print(f"wrote {out}")
    return 0


def cmd_bench_smoke(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import run_pipeline

    out = args.out or "BENCH_pipeline.json"
    # Serial-vs-parallel fig3 is part of the smoke run: 4 workers unless
    # the user asks otherwise (--jobs 1 measures the serial path twice).
    payload = run_pipeline(Path(out), jobs=getattr(args, "jobs", None) or 4)
    print(json.dumps(payload["speedup"], indent=2, sort_keys=True))
    print(f"wrote {out}")
    return 0


def cmd_rewards(args: argparse.Namespace) -> int:
    from repro.consensus.rewards import compare_policies

    print("Validator reward proposal (Section IV): tax sweep")
    for tax, validators, exposure in compare_policies(
        [0.0, 0.01, 0.05, 0.2], seed=args.seed, epochs=40
    ):
        print(f"  tax {tax:5.2f}/tx -> equilibrium validators {validators:4d}, "
              f"top-3 signature share {exposure:.1%}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.attack import Observation, SideChannelAttack

    history, dataset = _dataset_for(args)
    attack = SideChannelAttack(dataset, history.state if history else None)
    rng = np.random.default_rng(args.seed)
    rows = np.flatnonzero(dataset.kinds == "fiat")
    row = int(rng.choice(rows))
    observation = Observation(
        destination=dataset.accounts[int(dataset.destination_ids[row])],
        currency=dataset.currency_code(int(dataset.currency_ids[row])),
        amount=float(dataset.amounts[row]),
        timestamp=int(dataset.timestamps[row]),
    )
    result = attack.run(observation)
    print(f"observed: {observation.amount:g} {observation.currency} "
          f"-> {observation.destination.short()} @ t={observation.timestamp}")
    if not result.succeeded:
        print(f"ambiguous: {len(result.candidates)} candidate senders")
        return 1
    print(f"identified sender: {result.sender.address}")
    if result.profile is not None:
        profile = result.profile
        print(f"  payments sent/received: {profile.payments_sent}/"
              f"{profile.payments_received}")
        print(f"  total spent (EUR): {profile.total_spent_eur:,.2f}")
    return 0


def _common_parent() -> argparse.ArgumentParser:
    """The flag set every subcommand shares (the unified CLI surface).

    ``--profile`` uses ``SUPPRESS`` so a subcommand parse never clobbers
    the top-level ``--profile`` already recorded in the namespace
    (``python -m repro --profile fig3`` and ``python -m repro fig3
    --profile`` are both accepted).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=20170652,
                        help="master RNG seed (default 20170652)")
    parent.add_argument("--scale", type=int, default=600,
                        help="simulate 1/SCALE of a collection period")
    parent.add_argument("--out", type=str, default=None,
                        help="also write the output to this path")
    parent.add_argument("--payments", type=int, default=12_000,
                        help="synthetic history size (default 12000)")
    parent.add_argument("--archive", type=str, default=None,
                        help="read payments from a dumped archive instead")
    parent.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sharded artifacts "
                             "(default 1 = serial; output is bit-identical "
                             "either way; REPRO_DISABLE_PARALLEL=1 forces "
                             "serial)")
    parent.add_argument("--resume", action="store_true", default=False,
                        help="checkpoint each completed shard under "
                             "$REPRO_RESUME_DIR (default .repro-resume) and "
                             "reload verified checkpoints on rerun — a "
                             "killed --jobs N run recomputes only missing "
                             "shards, bit-for-bit identical to a cold run")
    parent.add_argument("--strict-ingest", action="store_true", default=False,
                        help="fail on the first malformed archive line "
                             "(the default; spelled out for scripts)")
    parent.add_argument("--quarantine", action="store_true", default=False,
                        help="lenient ingest: schema-validate each archive "
                             "line, divert bad ones to "
                             "<archive>.quarantine.jsonl with the reason, "
                             "abort past a 1%% bad-line fraction")
    parent.add_argument("--profile", action="store_true",
                        default=argparse.SUPPRESS,
                        help="collect perf counters/timers and report on exit")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS'17 Ripple study's tables and figures.",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        default=False,
        help="collect perf counters/timers and print a report on exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    parent = _common_parent()

    sub = subparsers.add_parser("figures", parents=[parent],
                                help="list reproducible artifacts")
    sub.set_defaults(func=cmd_figures)

    # Every registered artifact becomes a subcommand dispatching through
    # the registry; only artifact-specific flags are declared here.
    for name, entry in ARTIFACTS.items():
        sub = subparsers.add_parser(name, parents=[parent],
                                    help=entry.description)
        if name == "fig2":
            sub.add_argument("--period", default=None,
                             choices=[s.key for s in PERIODS])
        elif name == "fig4":
            sub.add_argument("--top", type=int, default=25)
        elif name == "fig7":
            sub.add_argument("--top", type=int, default=50)
        elif name == "chaos":
            sub.add_argument("--plan", default="partition",
                             choices=sorted(PLANS),
                             help="named fault plan to replay")
            sub.add_argument("--rounds", type=int, default=240,
                             help="ledger-close attempts to drive")
        sub.set_defaults(func=cmd_artifact)

    sub = subparsers.add_parser("generate", parents=[parent],
                                help="dump a synthetic ledger archive")
    sub.set_defaults(func=cmd_generate)

    sub = subparsers.add_parser("attack", parents=[parent],
                                help="run one latte attack")
    sub.set_defaults(func=cmd_attack)

    sub = subparsers.add_parser(
        "defenses", parents=[parent],
        help="evaluate de-anonymization countermeasures",
    )
    sub.set_defaults(func=cmd_defenses)

    sub = subparsers.add_parser(
        "rewards", parents=[parent],
        help="simulate the Section IV validator-reward proposal",
    )
    sub.set_defaults(func=cmd_rewards)

    sub = subparsers.add_parser(
        "bench-node", parents=[parent],
        help="measure engine/path-finder throughput",
    )
    sub.set_defaults(func=cmd_bench_node)

    sub = subparsers.add_parser(
        "bench-smoke", parents=[parent],
        help="measure the reduced generation->fig3 pipeline",
    )
    sub.set_defaults(func=cmd_bench_smoke)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "profile", False):
        PERF.enable()
    try:
        return args.func(args)
    finally:
        # Report whether profiling came from --profile or REPRO_PROFILE=1.
        if PERF.enabled:
            print(PERF.report(), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
