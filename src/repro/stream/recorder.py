"""Persisting validation-stream captures to disk and replaying them.

The paper's measurement spanned three separate two-week periods months
apart — the captures were necessarily stored and analysed offline.  This
module provides that artifact boundary for stream data, symmetric to
:mod:`repro.analysis.archive` for ledger data: events stream to a JSONL
file as they arrive, and a stored capture replays into any subscriber
(e.g. a fresh :class:`~repro.stream.collector.StreamCollector`).
"""

from __future__ import annotations

import json
import os
from typing import IO, Callable, Iterator, Optional

from repro.consensus.proposals import Validation
from repro.errors import StreamError
from repro.stream.events import StreamEvent

CAPTURE_VERSION = 1


class StreamRecorder:
    """A subscriber that appends every event to a JSONL capture file."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = None
        self.events_written = 0

    def __enter__(self) -> "StreamRecorder":
        self.open()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def open(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(json.dumps({"version": CAPTURE_VERSION}) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __call__(self, event: StreamEvent) -> None:
        if self._handle is None:
            raise StreamError("recorder is not open")
        payload = {
            "v": event.validation.validator,
            "q": event.validation.sequence,
            "h": event.validation.page_hash.hex(),
            "t": event.validation.sign_time,
            "r": event.received_at,
        }
        self._handle.write(json.dumps(payload) + "\n")
        self.events_written += 1


def iter_capture(path: str) -> Iterator[StreamEvent]:
    """Stream events back out of a capture file."""
    if not os.path.exists(path):
        raise StreamError(f"capture not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise StreamError("capture has no valid header") from None
        if header.get("version") != CAPTURE_VERSION:
            raise StreamError(f"unsupported capture version {header.get('version')!r}")
        for line in handle:
            if not line.strip():
                continue
            payload = json.loads(line)
            yield StreamEvent(
                validation=Validation(
                    validator=payload["v"],
                    sequence=int(payload["q"]),
                    page_hash=bytes.fromhex(payload["h"]),
                    sign_time=int(payload["t"]),
                ),
                received_at=int(payload["r"]),
            )


def replay_capture(
    path: str, subscriber: Callable[[StreamEvent], None]
) -> int:
    """Feed a stored capture into ``subscriber``; returns events replayed."""
    count = 0
    for event in iter_capture(path):
        subscriber(event)
        count += 1
    return count
