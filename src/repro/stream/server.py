"""The simulated rippled server exposing the validation stream.

The paper's authors "set up a Ripple server that made use of the Ripple's
validation stream to capture and store" consensus data.  Our equivalent is
``StreamServer``: it attaches to a :class:`~repro.consensus.engine.
ConsensusEngine` as a validation observer, adds receive-side delay, and fans
events out to any number of subscribers (the collector among them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.consensus.engine import ConsensusEngine
from repro.consensus.proposals import Validation
from repro.errors import StreamError
from repro.stream.events import StreamEvent

Subscriber = Callable[[StreamEvent], None]


@dataclass
class StreamServer:
    """Relays validations from the consensus overlay to subscribers."""

    #: Mean network delay (seconds) between signing and stream delivery.
    mean_delay: float = 1.0
    #: Probability an individual validation never reaches this server —
    #: stream capture is lossy at the edges, as any overlay gossip is.
    loss_rate: float = 0.002
    seed: int = 0
    _subscribers: List[Subscriber] = field(default_factory=list)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)
    relayed: int = 0
    dropped: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def attach(self, engine: ConsensusEngine) -> None:
        """Start relaying the engine's validations to subscribers."""
        engine.subscribe(self.on_validation)

    def on_validation(self, validation: Validation) -> None:
        """Engine callback: deliver one validation, with delay and loss."""
        if self._rng.random() < self.loss_rate:
            self.dropped += 1
            return
        delay = max(0.0, self._rng.exponential(self.mean_delay))
        event = StreamEvent(
            validation=validation,
            received_at=validation.sign_time + int(round(delay)),
        )
        self.relayed += 1
        for subscriber in self._subscribers:
            subscriber(event)

    def require_subscribers(self) -> None:
        if not self._subscribers:
            raise StreamError("stream server has no subscribers")
