"""The simulated rippled server exposing the validation stream.

The paper's authors "set up a Ripple server that made use of the Ripple's
validation stream to capture and store" consensus data.  Our equivalent is
``StreamServer``: it attaches to a :class:`~repro.consensus.engine.
ConsensusEngine` as a validation observer, adds receive-side delay, and fans
events out to any number of subscribers (the collector among them).

A chaos injector (:class:`repro.chaos.ChaosInjector`) can force the
subscriber connection down for scheduled windows.  The server then buffers
events and, on reconnect, replays the buffer *plus* the last few events it
had already delivered — at-least-once semantics, exactly what a websocket
client resuming a validation stream sees.  Subscribers that must not double
count (the collector) deduplicate on their side.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.consensus.engine import ConsensusEngine
from repro.consensus.proposals import Validation
from repro.errors import StreamError
from repro.stream.events import StreamEvent

Subscriber = Callable[[StreamEvent], None]


@dataclass
class StreamServer:
    """Relays validations from the consensus overlay to subscribers."""

    #: Mean network delay (seconds) between signing and stream delivery.
    mean_delay: float = 1.0
    #: Probability an individual validation never reaches this server —
    #: stream capture is lossy at the edges, as any overlay gossip is.
    loss_rate: float = 0.002
    seed: int = 0
    #: Optional chaos injector scheduling subscriber disconnects.
    chaos: Optional[object] = None
    #: How many already-delivered events are replayed again after a
    #: reconnect (the at-least-once overlap subscribers must deduplicate).
    replay_overlap: int = 4
    _subscribers: List[Subscriber] = field(default_factory=list)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)
    _pending: List[StreamEvent] = field(default_factory=list, repr=False)
    _recent: Optional[Deque[StreamEvent]] = field(default=None, repr=False)
    relayed: int = 0
    dropped: int = 0
    replayed: int = 0
    reconnects: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._recent = deque(maxlen=self.replay_overlap)

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def attach(self, engine: ConsensusEngine) -> None:
        """Start relaying the engine's validations to subscribers."""
        engine.subscribe(self.on_validation)

    def on_validation(self, validation: Validation) -> None:
        """Engine callback: deliver one validation, with delay and loss."""
        if self._rng.random() < self.loss_rate:
            self.dropped += 1
            return
        delay = max(0.0, self._rng.exponential(self.mean_delay))
        event = StreamEvent(
            validation=validation,
            received_at=validation.sign_time + int(round(delay)),
        )
        if self.chaos is not None and self.chaos.stream_disconnected(
            validation.sign_time
        ):
            # Connection down: hold the event for replay on reconnect.
            self._pending.append(event)
            self.chaos.note_stream_buffered()
            return
        if self._pending:
            self._replay()
        self.relayed += 1
        if self.chaos is not None:
            self._recent.append(event)
        self._deliver(event)

    def _replay(self) -> None:
        """Reconnect: flush buffered events, re-sending a recent overlap."""
        replayed = list(self._recent) + self._pending
        self._pending = []
        self.reconnects += 1
        self.replayed += len(replayed)
        if self.chaos is not None:
            self.chaos.note_stream_replayed(len(replayed))
        for event in replayed:
            self._recent.append(event)
            self._deliver(event)

    def _deliver(self, event: StreamEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)

    def flush(self) -> None:
        """Deliver anything still buffered (run ended while disconnected)."""
        if self._pending:
            self._replay()

    def require_subscribers(self) -> None:
        if not self._subscribers:
            raise StreamError("stream server has no subscribers")
