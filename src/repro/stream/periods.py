"""The three collection periods of the robustness study (Section IV).

The paper captured the validation stream for the first two weeks of
December 2015, July 2016, and November 2016.  Each period saw a different
validator population; the rosters below reproduce the population *structure*
reported in Fig. 2 and the surrounding text:

* **Dec 2015** — R1–R5 plus 29 others: 3 active unidentified validators, 5
  strugglers with a very small fraction of valid pages, and 21 validators
  with zero valid pages (private ledgers or hopeless latency).
* **Jul 2016** — R1–R5 plus 28 others: 10 actives comparable to R1–R5
  (bougalis.net ×2, freewallet1/2.net, mduo13.com, youwant.to, and
  unidentified keys), and 5 ``testnet.ripple.com`` servers signing ~200k
  pages of a parallel instance, none valid on the main net.
* **Nov 2016** — R1–R5 plus 34 others: only 8 actives; freewallet1/2.net
  collapsed to <10 % of their July participation, one bougalis.net server
  disappeared and the other stayed for only ~6 % of the period; the 5
  test-net servers persisted.

Exactly nine validators (R1–R5 plus four ``n9...`` keys) are active in all
three periods, matching the churn finding; validator labels are taken from
the paper's figures.

A real two-week period is ~242k ledger closes (one per 5 s).  Simulations
run a scaled-down round count (default 1/48 ≈ 5k rounds) and report the
scale factor, since the paper's claims are about *shape* — who signs, and
whose pages validate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.consensus.engine import CLOSE_INTERVAL_SECONDS
from repro.consensus.faults import (
    ValidatorProfile,
    active,
    forked,
    lagging,
    offline,
    windowed,
)
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator

#: Ledger closes in two weeks at one close per 5 seconds.
ROUNDS_PER_TWO_WEEKS = 14 * 24 * 3600 // CLOSE_INTERVAL_SECONDS
#: Default simulation scale (fraction of the full two weeks).
DEFAULT_SCALE = 1.0 / 48.0

RIPPLE_LABS = ("R1", "R2", "R3", "R4", "R5")
#: The four non-Ripple keys active in every period (churn anchor).
PERSISTENT_ACTIVE = (
    "n9KDJn...Q7KhQ2",
    "n9KDWe...aFsVox",
    "n9L6Xc...tzbS3G",
    "n9Mb8Z...aKiCnD",
)


@dataclass(frozen=True)
class PeriodSpec:
    """A named collection period and its validator population."""

    key: str
    label: str
    #: name -> profile for every non-Ripple-Labs validator observed.
    roster: Dict[str, ValidatorProfile]
    #: which validators (including R1–R5) anchor the master UNL.
    trusted: Tuple[str, ...]

    def validator_names(self) -> List[str]:
        return list(RIPPLE_LABS) + sorted(self.roster)

    def observed_count(self) -> int:
        """Validators observed beyond R1–R5 (the paper's '29'/'28'/'34')."""
        return len(self.roster)

    def build_validators(self, rounds: int) -> List[Validator]:
        """Materialize the roster for a run of ``rounds`` rounds.

        Profiles whose presence windows are expressed as fractions get
        resolved against the actual round count here.
        """
        trusted_unl = UNL.of(self.trusted)
        validators = [
            Validator(name, trusted_unl, active(availability=0.985), is_ripple_labs=True)
            for name in RIPPLE_LABS
        ]
        for name in sorted(self.roster):
            profile = self.roster[name]
            if profile.presence is not None:
                start_fraction, end_fraction = profile.presence
                profile = windowed(
                    profile,
                    int(start_fraction / 1000.0 * rounds),
                    int(end_fraction / 1000.0 * rounds),
                )
            unl = (
                UNL.of([name])
                if profile.network_id != 0
                else trusted_unl
            )
            validators.append(Validator(name, unl, profile))
        # Test-net/forked validators share their instance's UNL.
        by_network: Dict[int, List[str]] = {}
        for validator in validators:
            if validator.network_id != 0:
                by_network.setdefault(validator.network_id, []).append(validator.name)
        for validator in validators:
            if validator.network_id != 0:
                validator.unl = UNL.of(by_network[validator.network_id])
        return validators

    def master_unl(self) -> UNL:
        return UNL.of(self.trusted)


def _fraction_window(start_permille: int, end_permille: int, profile: ValidatorProfile) -> ValidatorProfile:
    """Tag a profile with a presence window in permille of the period.

    Resolved to concrete rounds by :meth:`PeriodSpec.build_validators`.
    """
    return ValidatorProfile(
        behaviour=profile.behaviour,
        availability=profile.availability,
        sync_quality=profile.sync_quality,
        network_id=profile.network_id,
        presence=(start_permille, end_permille),
    )


def _december_2015() -> PeriodSpec:
    roster: Dict[str, ValidatorProfile] = {}
    # Three active unidentified contributors.
    for name in ("n9KDJn...Q7KhQ2", "n9KDWe...aFsVox", "n9L6Xc...tzbS3G"):
        roster[name] = active(availability=0.93)
    # Five strugglers: present, almost never in sync.
    for name in (
        "n9Mb8Z...aKiCnD",
        "n9KsiC...nWfDbS",
        "n9Kewx...VWJ4xP",
        "n9MKk7...F4SG8T",
        "n9MabQ...M3BzeL",
    ):
        roster[name] = lagging(availability=0.45, sync_quality=0.05)
    # Twenty-one validators with zero valid pages: fourteen on private
    # ledger instances, seven hopelessly out of sync.
    private = [
        "mycooldomain.com",
        "xagate.com",
        "n94a8g...endSoo",
        "n94aaY...RjEhVa",
        "n9JbRC...nfAF1o",
        "n9K4vf...7FUDUu",
        "n9KkJS...L7aGM9",
        "n9L21J...KXMxyZ",
        "n9LD3q...SdAjfC",
        "n9LFrq...2N4tqt",
        "n9LWm9...uBXfEH",
        "n9LXgn...VfrY42",
        "n9LsfY...9yuez6",
        "n9M15o...2Fct7s",
    ]
    for index, name in enumerate(private):
        roster[name] = forked(network_id=2 + index % 3, availability=0.7)
    for name in (
        "n9M3WR...C3qjsR",
        "n9M4pt...vFuyDP",
        "n9MLVG...j21tX3",
        "n9MQeS...quKwzA",
        "n9MfTP...fHrELR",
        "n9Mjcq...4ZkRgp",
        "n9MoY1...MjPjd4",
    ):
        roster[name] = lagging(availability=0.35, sync_quality=0.0)
    return PeriodSpec(
        key="dec2015",
        label="First half of December 2015",
        roster=roster,
        trusted=RIPPLE_LABS
        + ("n9KDJn...Q7KhQ2", "n9KDWe...aFsVox", "n9L6Xc...tzbS3G"),
    )


def _july_2016() -> PeriodSpec:
    roster: Dict[str, ValidatorProfile] = {}
    actives = (
        "bougalis.net",
        "bougalis.net#2",
        "freewallet1.net",
        "freewallet2.net",
        "mduo13.com",
        "youwant.to",
    ) + PERSISTENT_ACTIVE
    for name in actives:
        roster[name] = active(availability=0.9)
    for index in range(1, 6):
        roster[f"testnet.ripple.com#{index}"] = forked(network_id=1, availability=0.88)
    for name in ("rippled.media.mit.edu", "rippled.mr.exchange"):
        roster[name] = lagging(availability=0.5, sync_quality=0.1)
    for name in (
        "n9JYcW...ztYoFP",
        "n9KsiC...nWfDbS",
        "n9KwAL...YgCEag",
        "n9LiYQ...AHKqhh",
        "n9LxcZ...BniGHJ",
        "n9Lxmk...TgbQ3E",
        "n9MGPp...eLsX2X",
        "n9MHcZ...kdi37U",
        "n9ML3u...ZW3J3M",
        "n9MabQ...M3BzeL",
        "n9Mi2w...eG1ABs",
    ):
        roster[name] = offline(availability=0.08)
    return PeriodSpec(
        key="jul2016",
        label="First half of July 2016",
        roster=roster,
        trusted=RIPPLE_LABS + actives,
    )


def _november_2016() -> PeriodSpec:
    roster: Dict[str, ValidatorProfile] = {}
    actives = (
        "youwant.to",
        "duke67.com",
        "awsstatic.com/fin-serv",
        "n9KwAL...YgCEag",
    ) + PERSISTENT_ACTIVE
    for name in actives:
        roster[name] = active(availability=0.9)
    # freewallet1/2 collapsed to an order of magnitude fewer pages.
    roster["freewallet1.net"] = active(availability=0.85)
    roster["freewallet1.net"] = _fraction_window(0, 80, roster["freewallet1.net"])
    roster["freewallet2.net"] = _fraction_window(0, 75, active(availability=0.85))
    # One bougalis.net disappeared; the other stayed ~6 % of the period.
    roster["bougalis.net"] = _fraction_window(0, 62, active(availability=0.95))
    for index in range(1, 6):
        roster[f"testnet.ripple.com#{index}"] = forked(network_id=1, availability=0.88)
    for name in ("rippled.media.mit.edu", "rippled.mr.exchange", "paleorbglow.com"):
        roster[name] = lagging(availability=0.45, sync_quality=0.08)
    for name in (
        "n94RVq...zYLazo",
        "n94rRX...QSpVQM",
        "n9J2fT...rK2ymG",
        "n9Jt1u...9fpxMz",
        "n9K6Yb...xsMTuo",
        "n9KTpi...avNAUX",
        "n9Kewx...VWJ4xP",
        "n9Kszs...tRmcav",
        "n9KvK2...pzssZL",
        "n9LiYQ...AHKqhh",
        "n9MH5P...3Zs1ky",
        "n9MHog...SYqH9c",
        "n9MKk7...F4SG8T",
        "n9MbL5...rwSuXm",
        "n9Mm3t...nQWpg7",
    ):
        roster[name] = offline(availability=0.06)
    return PeriodSpec(
        key="nov2016",
        label="First half of November 2016",
        roster=roster,
        trusted=RIPPLE_LABS + actives,
    )


#: All three collection periods, in chronological order.
PERIODS: Tuple[PeriodSpec, ...] = (_december_2015(), _july_2016(), _november_2016())


def period(key: str) -> PeriodSpec:
    """Look up a period by key ('dec2015', 'jul2016', 'nov2016')."""
    for spec in PERIODS:
        if spec.key == key:
            return spec
    raise KeyError(f"unknown collection period {key!r}")


def rounds_for_scale(scale: float = DEFAULT_SCALE) -> int:
    """Number of simulated rounds for a fraction of the two-week period."""
    return max(1, int(ROUNDS_PER_TWO_WEEKS * scale))
