"""Events carried by the validation stream.

A subscriber to rippled's ``validations`` stream receives one message per
validation signature a server hears on the overlay network.  The stream is
the paper's measurement instrument: unlike the ledger itself (which stores
no validator information), the stream exposes who signed what, when.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.proposals import Validation


@dataclass(frozen=True)
class StreamEvent:
    """One message observed on the validation stream.

    ``received_at`` is the collector's local receive time (stream events
    arrive with network delay after the validator's ``sign_time``).
    """

    validation: Validation
    received_at: int

    @property
    def validator(self) -> str:
        return self.validation.validator

    @property
    def page_hash(self) -> bytes:
        return self.validation.page_hash

    @property
    def sequence(self) -> int:
        return self.validation.sequence

    def to_record(self) -> dict:
        """Flat dict form, convenient for columnar analysis."""
        return {
            "validator": self.validation.validator,
            "sequence": self.validation.sequence,
            "page_hash": self.validation.page_hash.hex(),
            "sign_time": self.validation.sign_time,
            "received_at": self.received_at,
            "signed": self.validation.signature is not None,
        }
