"""The validation-stream substrate: the paper's measurement apparatus.

A simulated rippled server relays consensus validations to subscribers; a
collector records them over configurable windows; period specs reproduce
the three two-week validator populations of Section IV.
"""

from repro.stream.collector import StreamCollector
from repro.stream.events import StreamEvent
from repro.stream.periods import (
    DEFAULT_SCALE,
    PERIODS,
    PERSISTENT_ACTIVE,
    RIPPLE_LABS,
    ROUNDS_PER_TWO_WEEKS,
    PeriodSpec,
    period,
    rounds_for_scale,
)
from repro.stream.recorder import StreamRecorder, iter_capture, replay_capture
from repro.stream.server import StreamServer

__all__ = [
    "DEFAULT_SCALE",
    "PERIODS",
    "PERSISTENT_ACTIVE",
    "PeriodSpec",
    "RIPPLE_LABS",
    "ROUNDS_PER_TWO_WEEKS",
    "StreamCollector",
    "StreamEvent",
    "StreamRecorder",
    "iter_capture",
    "replay_capture",
    "StreamServer",
    "period",
    "rounds_for_scale",
]
