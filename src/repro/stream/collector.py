"""Recording validation-stream data over a collection period.

The collector is the paper's data-gathering half: it subscribes to a
:class:`~repro.stream.server.StreamServer`, stores every event that falls
inside its collection window, and offers the aggregations the robustness
study needs — per-validator signature counts and the page hashes each
validator vouched for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import StreamError
from repro.stream.events import StreamEvent


@dataclass
class StreamCollector:
    """Accumulates stream events within an optional time window."""

    #: Inclusive collection window in stream time; None = unbounded.
    window_start: Optional[int] = None
    window_end: Optional[int] = None
    events: List[StreamEvent] = field(default_factory=list)

    def __call__(self, event: StreamEvent) -> None:
        self.record(event)

    def record(self, event: StreamEvent) -> None:
        if self.window_start is not None and event.received_at < self.window_start:
            return
        if self.window_end is not None and event.received_at > self.window_end:
            return
        self.events.append(event)

    # Aggregations --------------------------------------------------------------

    def validators_seen(self) -> List[str]:
        """Every distinct validator observed, sorted."""
        return sorted({event.validator for event in self.events})

    def pages_by_validator(self) -> Dict[str, List[bytes]]:
        """All page hashes each validator signed (with multiplicity)."""
        out: Dict[str, List[bytes]] = {}
        for event in self.events:
            out.setdefault(event.validator, []).append(event.page_hash)
        return out

    def total_counts(self) -> Dict[str, int]:
        """Signed-page count per validator (the 'Total pages' bars)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.validator] = counts.get(event.validator, 0) + 1
        return counts

    def valid_counts(self, main_chain_hashes: Iterable[bytes]) -> Dict[str, int]:
        """Per-validator count of signatures on main-ledger pages.

        ``main_chain_hashes`` are the fully validated page hashes the
        collector later reads from the public ledger — the comparison the
        paper performs to separate 'total' from 'valid' pages.
        """
        valid: Set[bytes] = set(main_chain_hashes)
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.page_hash in valid:
                counts[event.validator] = counts.get(event.validator, 0) + 1
        return counts

    def require_data(self) -> None:
        if not self.events:
            raise StreamError("collector recorded no events")

    def __len__(self) -> int:
        return len(self.events)
