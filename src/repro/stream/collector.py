"""Recording validation-stream data over a collection period.

The collector is the paper's data-gathering half: it subscribes to a
:class:`~repro.stream.server.StreamServer`, stores every event that falls
inside its collection window, and offers the aggregations the robustness
study needs — per-validator signature counts and the page hashes each
validator vouched for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StreamError
from repro.obs.metrics import METRICS
from repro.stream.events import StreamEvent


@dataclass
class StreamCollector:
    """Accumulates stream events within an optional time window.

    The window is **closed on both ends**: an event is kept when
    ``window_start <= received_at <= window_end`` (either bound may be
    ``None`` for unbounded).  In particular ``window_start == window_end
    == T`` is a one-instant window that accepts exactly the events
    received at ``T`` — it is *not* an empty half-open interval.  See
    :meth:`record`.

    With ``dedupe=True`` the collector survives at-least-once delivery:
    replayed events (same validator, sequence, page hash, and sign time)
    are dropped and counted in ``duplicates_dropped`` — required when the
    upstream :class:`~repro.stream.server.StreamServer` reconnects after
    an injected disconnect and replays its buffer.

    Dedupe memory is **bounded**: replay only ever redelivers recent
    events (a reconnect replays the server's buffer, not all of
    history), so keys older than ``dedupe_horizon`` stream-seconds
    behind the newest received time are evicted, and the whole table is
    dropped once the stream moves past ``window_end`` — a season-long
    collection no longer holds every signature it ever saw.  Evictions
    are counted in ``dedupe_evicted`` and ``stream.dedupe.evicted``.
    """

    #: Inclusive collection window in stream time; None = unbounded.
    window_start: Optional[int] = None
    window_end: Optional[int] = None
    events: List[StreamEvent] = field(default_factory=list)
    #: Drop exact redeliveries (reconnect replays). Off by default: the
    #: validation stream legitimately carries repeated signatures, and the
    #: paper's total-pages counts keep their multiplicity.
    dedupe: bool = False
    #: Evict dedupe keys once the stream has advanced this many seconds
    #: past them; None keeps keys until the window closes.
    dedupe_horizon: Optional[int] = None
    #: Optional chaos injector notified of dropped duplicates.
    chaos: Optional[object] = None
    duplicates_dropped: int = 0
    dedupe_evicted: int = 0
    #: key -> received_at of the last sighting (the eviction clock).
    _seen: Dict[Tuple[str, int, bytes, int], int] = field(
        default_factory=dict, repr=False
    )
    _evict_watermark: Optional[int] = field(default=None, repr=False)

    def __call__(self, event: StreamEvent) -> None:
        self.record(event)

    def record(self, event: StreamEvent) -> None:
        """Store ``event`` if it falls inside the closed collection window.

        Window contract: inclusive start, inclusive end —
        ``window_start <= received_at <= window_end``.  Events outside the
        window are silently ignored (the stream keeps flowing; the
        collector simply is not recording them).
        """
        if self.window_start is not None and event.received_at < self.window_start:
            return
        if self.window_end is not None and event.received_at > self.window_end:
            # The window is closed for good (stream time only advances):
            # nothing will be recorded again, so the dedupe table is
            # dead weight — drop it all at once.
            if self._seen:
                self._evict(len(self._seen))
                self._seen.clear()
            return
        if self.dedupe:
            key = (
                event.validator,
                event.sequence,
                event.page_hash,
                event.validation.sign_time,
            )
            if key in self._seen:
                self._seen[key] = event.received_at
                self.duplicates_dropped += 1
                if self.chaos is not None:
                    self.chaos.note_duplicate_dropped()
                return
            self._seen[key] = event.received_at
            self._sweep_seen(event.received_at)
        self.events.append(event)

    def _evict(self, count: int) -> None:
        self.dedupe_evicted += count
        METRICS.count("stream.dedupe.evicted", count)

    def _sweep_seen(self, now: int) -> None:
        """Amortized horizon eviction: one O(n) sweep per horizon advance.

        Runs only when stream time has moved a full horizon past the
        last sweep, so per-event cost stays O(1) amortized while the
        table never holds keys older than ~2 horizons.
        """
        horizon = self.dedupe_horizon
        if horizon is None:
            return
        if self._evict_watermark is None:
            self._evict_watermark = now
            return
        if now - self._evict_watermark < horizon:
            return
        cutoff = now - horizon
        stale = [
            key for key, seen_at in self._seen.items() if seen_at < cutoff
        ]
        for key in stale:
            del self._seen[key]
        if stale:
            self._evict(len(stale))
        self._evict_watermark = now

    # Aggregations --------------------------------------------------------------

    def validators_seen(self) -> List[str]:
        """Every distinct validator observed, sorted."""
        return sorted({event.validator for event in self.events})

    def pages_by_validator(self) -> Dict[str, List[bytes]]:
        """All page hashes each validator signed (with multiplicity)."""
        out: Dict[str, List[bytes]] = {}
        for event in self.events:
            out.setdefault(event.validator, []).append(event.page_hash)
        return out

    def total_counts(self) -> Dict[str, int]:
        """Signed-page count per validator (the 'Total pages' bars)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.validator] = counts.get(event.validator, 0) + 1
        return counts

    def valid_counts(self, main_chain_hashes: Iterable[bytes]) -> Dict[str, int]:
        """Per-validator count of signatures on main-ledger pages.

        ``main_chain_hashes`` are the fully validated page hashes the
        collector later reads from the public ledger — the comparison the
        paper performs to separate 'total' from 'valid' pages.
        """
        valid: Set[bytes] = set(main_chain_hashes)
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.page_hash in valid:
                counts[event.validator] = counts.get(event.validator, 0) + 1
        return counts

    def require_data(self) -> None:
        if not self.events:
            raise StreamError("collector recorded no events")

    def __len__(self) -> int:
        return len(self.events)
