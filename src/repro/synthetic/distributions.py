"""Per-currency payment-amount distributions.

Fig. 5 of the paper shows very different amount profiles per currency:
BTC and CCK payments are micro-amounts (BTC is worth hundreds of EUR);
EUR and USD have remarkably similar mid-range curves; XRP spans a huge
range; and MTL payments cluster around 10^9 — the spam signature.

Real payments also repeat *price points* (a latte costs 4.50 every day),
which is what makes the amount field a weak identifier on its own
(⟨Am,−,C,D⟩ drops to ~49 % in Fig. 3).  Each sampler therefore mixes a
log-normal body with a set of common price points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.ledger.currency import Currency


@dataclass(frozen=True)
class AmountModel:
    """A mixture of common price points and a log-normal body.

    ``price_points``     — frequently recurring amounts (menu prices,
                           round transfers) and their selection weight.
    ``log_mu/log_sigma`` — parameters of the log-normal body.
    ``point_share``      — probability a payment uses a price point.
    """

    log_mu: float
    log_sigma: float
    price_points: Tuple[float, ...] = ()
    point_share: float = 0.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        body = rng.lognormal(self.log_mu, self.log_sigma, size)
        if self.price_points and self.point_share > 0:
            use_point = rng.random(size) < self.point_share
            points = rng.choice(np.array(self.price_points), size=size)
            body = np.where(use_point, points, body)
        return body


#: Fig. 5-calibrated models.  log_mu is ln(median).
AMOUNT_MODELS: Dict[str, AmountModel] = {
    # XRP spans micro-tips to huge spam transfers.
    "XRP": AmountModel(
        log_mu=np.log(50.0),
        log_sigma=2.6,
        price_points=(1.0, 10.0, 20.0, 100.0, 1000.0),
        point_share=0.25,
    ),
    # BTC is strong: most payments are small fractions.
    "BTC": AmountModel(
        log_mu=np.log(0.03),
        log_sigma=1.8,
        price_points=(0.001, 0.01, 0.1, 1.0),
        point_share=0.2,
    ),
    # CCK mimics BTC's micro-transaction profile (paper, Fig. 5).
    "CCK": AmountModel(
        log_mu=np.log(0.02),
        log_sigma=1.4,
        price_points=(0.001, 0.01, 0.05),
        point_share=0.35,
    ),
    # MTL spam: enormous amounts around 1e9.
    "MTL": AmountModel(log_mu=np.log(1.0e9), log_sigma=0.25),
    # EUR and USD deliberately share parameters — their survival curves
    # are "remarkably similar" in the paper.
    "USD": AmountModel(
        log_mu=np.log(40.0),
        log_sigma=1.9,
        price_points=(4.5, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0),
        point_share=0.3,
    ),
    "EUR": AmountModel(
        log_mu=np.log(40.0),
        log_sigma=1.9,
        price_points=(4.5, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0),
        point_share=0.3,
    ),
    "CNY": AmountModel(
        log_mu=np.log(200.0),
        log_sigma=1.9,
        price_points=(10.0, 50.0, 100.0, 1000.0),
        point_share=0.25,
    ),
    "JPY": AmountModel(
        log_mu=np.log(4000.0),
        log_sigma=1.8,
        price_points=(1000.0, 5000.0, 10000.0),
        point_share=0.25,
    ),
}

#: Fallback for tail currencies, scaled by rough unit value.
_DEFAULT_MODEL = AmountModel(
    log_mu=np.log(25.0), log_sigma=1.7, price_points=(1.0, 10.0, 100.0), point_share=0.2
)


def model_for(currency: Currency) -> AmountModel:
    return AMOUNT_MODELS.get(currency.code, _DEFAULT_MODEL)


def sample_amounts(
    currency: Currency, rng: np.random.Generator, size: int
) -> np.ndarray:
    """Draw ``size`` payment amounts for ``currency``.

    Amounts are truncated to the ledger's 10^-6 precision and floored at
    one millionth (a zero-amount payment is invalid).
    """
    values = model_for(currency).sample(rng, size)
    values = np.round(values, 6)
    return np.maximum(values, 1e-6)


def survival_function(
    amounts: Sequence[float], grid: Sequence[float]
) -> np.ndarray:
    """P(amount > x) evaluated on ``grid`` — the curves of Fig. 5."""
    data = np.sort(np.asarray(amounts, dtype=float))
    if data.size == 0:
        return np.zeros(len(grid))
    positions = np.searchsorted(data, np.asarray(grid), side="right")
    return 1.0 - positions / data.size
