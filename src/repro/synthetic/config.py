"""Configuration of the synthetic Ripple economy.

Every knob that calibrates the generator against the paper's reported
statistics lives here, with the paper's numbers cited next to each default.
Scaling down is uniform: the default run produces ~10^5 payments instead of
the paper's 23.4M, with the *relative* composition preserved.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import SyntheticError
from repro.ledger.transactions import to_ripple_time

#: System genesis and the end of the studied window (Jan 2013 – Sep 2015).
HISTORY_START = _dt.datetime(2013, 1, 1, tzinfo=_dt.timezone.utc)
HISTORY_END = _dt.datetime(2015, 9, 30, tzinfo=_dt.timezone.utc)
#: Launch of the ~Ripple Spin gambling service (paper: "launched in 2015").
RIPPLE_SPIN_LAUNCH = _dt.datetime(2015, 1, 15, tzinfo=_dt.timezone.utc)
#: Table II snapshot ("the status of Ripple in February 2015") and the end
#: of the replayed window (August 2015).
SNAPSHOT_TIME = _dt.datetime(2015, 2, 1, tzinfo=_dt.timezone.utc)
REPLAY_END = _dt.datetime(2015, 8, 31, tzinfo=_dt.timezone.utc)

#: Payment-count share per currency, calibrated to Fig. 4: XRP 49 %, MTL
#: ~14 % (3.3M of 23M), CCK second-most-used, BTC 4.7 %, USD 3.8 %,
#: CNY 3.3 %, JPY 2.1 %, EUR 0.4 %, then a long tail.
CURRENCY_SHARES: Dict[str, float] = {
    "XRP": 0.49,
    "CCK": 0.155,
    "MTL": 0.143,
    "BTC": 0.047,
    "USD": 0.038,
    "CNY": 0.033,
    "JPY": 0.021,
    "EUR": 0.004,
}

#: Tail currencies from Fig. 4's x-axis; they share the remaining mass
#: with geometrically decaying weights.
TAIL_CURRENCIES: Tuple[str, ...] = (
    "SFO", "DVC", "GWD", "RSC", "ICE", "STR", "GKO", "KRW", "TRC", "LTC",
    "CAD", "FMM", "MXN", "XNT", "CXN", "FBR", "DNX", "WTC", "ILS", "DOG",
    "GBP", "XEC", "NZD", "LWT", "NXT", "YOU", "ONC", "TBC", "CSC", "MRH",
    "SWD", "AUD", "NMC", "CTC", "PCV", "IOU", "LIK", "UKN", "RES", "JED",
    "VTC", "RJP",
)


@dataclass(frozen=True)
class EconomyConfig:
    """Sizes and behavioural shares of the synthetic economy."""

    seed: int = 20170652  # the paper's DOI suffix
    #: Total payments to generate (paper: 23.4M; default scale ~1/300).
    n_payments: int = 80_000
    #: Regular users (paper: 165k registered / 55k active).
    n_users: int = 1_200
    #: Gateways (the paper identifies ~20 among the top-50 hubs).
    n_gateways: int = 20
    #: Market makers (paper: top-100 place 87 % of 90M offers).
    n_market_makers: int = 120
    #: Exchange offers to generate (paper: ~90M; same 1/300-ish scale).
    n_offers: int = 300_000
    #: Zipf exponent for offer placement concentration; together with the
    #: one-off user-offer tail this calibrates the top 10/50/100 makers to
    #: ≈50/75/87 % of offers.
    offer_zipf_exponent: float = 1.0

    # Behavioural shares within the XRP payment mass (fractions of *XRP*
    # payments, per the appendix: ~10 % to ~Ripple Spin, ~9 % to
    # ACCOUNT_ZERO spam).
    ripple_spin_share: float = 0.10
    account_zero_share: float = 0.09

    #: Share of non-XRP, non-spam IOU payments that are cross-currency
    #: (paper, Table II window: 68.7 %).
    cross_currency_share: float = 0.687

    #: MTL spam path shape (paper: exactly 8 intermediate hops, 6 parallel
    #: paths, forced).
    mtl_spam_hops: int = 8
    mtl_spam_parallel_paths: int = 6

    #: Growth exponent of the payment arrival process: timestamps follow
    #: t ∝ u^growth with u uniform, so the rate grows over the 3 years.
    growth: float = 0.6

    #: Fraction of history (by payment index) at which the Table II
    #: snapshot is taken.  Derived from SNAPSHOT_TIME against the growth
    #: curve at generation time.
    start_time: int = to_ripple_time(HISTORY_START)
    end_time: int = to_ripple_time(HISTORY_END)
    spin_launch_time: int = to_ripple_time(RIPPLE_SPIN_LAUNCH)
    snapshot_time: int = to_ripple_time(SNAPSHOT_TIME)
    replay_end_time: int = to_ripple_time(REPLAY_END)

    #: XRP funding per account at activation, in drops.
    activation_drops: int = 200 * 10 ** 6

    def __post_init__(self) -> None:
        if self.n_payments <= 0:
            raise SyntheticError("n_payments must be positive")
        if self.n_users < 10:
            raise SyntheticError("need at least 10 users")
        if self.n_gateways < 2:
            raise SyntheticError("need at least 2 gateways")
        if self.n_market_makers < 1:
            raise SyntheticError("need at least 1 market maker")
        if not 0 < self.growth <= 1:
            raise SyntheticError("growth must be in (0, 1]")
        if self.end_time <= self.start_time:
            raise SyntheticError("history must have positive duration")

    def currency_weights(self) -> Dict[str, float]:
        """Full payment-share map including the geometric tail."""
        weights = dict(CURRENCY_SHARES)
        remaining = 1.0 - sum(weights.values())
        decay = 0.88
        raw = [decay ** index for index in range(len(TAIL_CURRENCIES))]
        total = sum(raw)
        for code, mass in zip(TAIL_CURRENCIES, raw):
            weights[code] = remaining * mass / total
        return weights


def small_config(seed: int = 7, n_payments: int = 4_000) -> EconomyConfig:
    """A fast configuration for unit tests."""
    return EconomyConfig(
        seed=seed,
        n_payments=n_payments,
        n_users=220,
        n_gateways=8,
        n_market_makers=30,
        n_offers=20_000,
    )
