"""Flat transaction records — the synthetic equivalent of the ledger dump.

The paper's pipeline extracts, for each of the 23M payments, the sender,
amount, timestamp, currency, and destination (Section V-A), plus the path
structure used by the appendix analyses.  ``TransactionRecord`` carries
exactly that: one record per payment, as if parsed out of the 500 GB ledger
history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ledger.accounts import AccountID

#: Payment kinds, used by the generator and filtered on by analyses.
KIND_XRP = "xrp"
KIND_SPIN = "spin"
KIND_ZERO = "zero"
KIND_CCK = "cck"
KIND_FIAT = "fiat"
KIND_MTL_SPAM = "mtl_spam"
KIND_LONG_SPAM = "long_spam"

ALL_KINDS = (
    KIND_XRP,
    KIND_SPIN,
    KIND_ZERO,
    KIND_CCK,
    KIND_FIAT,
    KIND_MTL_SPAM,
    KIND_LONG_SPAM,
)


class _SlottedFrozenPickle:
    """Pickle support for frozen dataclasses that declare ``__slots__``.

    Slotted instances have no ``__dict__``, so pickle's default
    ``__setstate__`` assigns slot values with ``setattr`` — which a frozen
    dataclass forbids.  Restore through ``object.__setattr__`` instead,
    the same escape hatch dataclasses' own ``__init__`` uses.
    """

    __slots__ = ()

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        if isinstance(state, tuple) and len(state) == 2 and isinstance(state[1], dict):
            # Pickle's default two-part (dict, slots-dict) state, produced
            # before __getstate__ existed or by protocol-generic copiers.
            state = tuple(state[1][name] for name in self.__slots__)
        if len(state) != len(self.__slots__):
            raise ValueError(f"stale pickle state for {type(self).__name__}")
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)


@dataclass(frozen=True)
class TransactionRecord(_SlottedFrozenPickle):
    """One payment as read back from the (synthetic) public ledger."""

    __slots__ = (
        "index",
        "timestamp",
        "sender",
        "destination",
        "currency",
        "amount",
        "is_xrp_direct",
        "cross_currency",
        "intermediate_hops",
        "parallel_paths",
        "intermediaries",
        "delivered",
        "kind",
    )

    index: int
    #: Ripple-epoch seconds of the sealing page's close time.
    timestamp: int
    sender: AccountID
    destination: AccountID
    #: three-letter currency code of the delivered amount.
    currency: str
    #: delivered amount, at the ledger's 1e-6 precision.
    amount: float
    is_xrp_direct: bool
    cross_currency: bool
    intermediate_hops: int
    parallel_paths: int
    intermediaries: Tuple[AccountID, ...]
    delivered: bool
    kind: str

    @property
    def is_multi_hop(self) -> bool:
        """True for the 10M-payment class of Fig. 6 (at least one
        intermediate node on the trust path)."""
        return self.delivered and not self.is_xrp_direct and self.intermediate_hops >= 1


@dataclass(frozen=True)
class OfferRecord(_SlottedFrozenPickle):
    """One exchange-offer placement (who placed it, and when)."""

    __slots__ = ("owner", "timestamp")

    owner: AccountID
    timestamp: int


@dataclass(frozen=True)
class ReplayIntent(_SlottedFrozenPickle):
    """A post-snapshot payment, re-submittable for the Table II replay."""

    __slots__ = (
        "timestamp",
        "sender",
        "receiver",
        "amount",
        "currency",
        "spend_currency",
        "kind",
    )

    timestamp: int
    sender: AccountID
    receiver: AccountID
    amount: float
    currency: str
    #: currency the sender spends (== currency for single-currency payments).
    spend_currency: str
    kind: str

    @property
    def is_cross_currency(self) -> bool:
        return self.spend_currency != self.currency


@dataclass(frozen=True)
class TrustEvent(_SlottedFrozenPickle):
    """A post-snapshot trust-line creation/update, replayed before the
    payments that follow it (the paper 'reflected in the modified trust
    network the updates happening on the real system to trust-lines')."""

    __slots__ = ("timestamp", "truster", "trustee", "currency", "limit")

    timestamp: int
    truster: AccountID
    trustee: AccountID
    currency: str
    limit: float
