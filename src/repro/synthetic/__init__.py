"""The synthetic Ripple economy — stand-in for the 500 GB ledger download.

Actor models, calibrated workload composition, per-currency amount
distributions, the spam campaigns the paper documents, and a generator that
executes the whole history through the real payment engine.
"""

from repro.synthetic.actors import Cast, Gateway, MarketMaker, User, build_cast
from repro.synthetic.config import (
    CURRENCY_SHARES,
    EconomyConfig,
    TAIL_CURRENCIES,
    small_config,
)
from repro.synthetic.distributions import (
    AmountModel,
    model_for,
    sample_amounts,
    survival_function,
)
from repro.synthetic.generator import (
    LedgerHistoryGenerator,
    SyntheticHistory,
    generate_history,
)
from repro.synthetic.scenarios import (
    NoSpamEconomyConfig,
    build_no_spam,
    dense_makers_config,
    late_era_config,
    no_spam_config,
)
from repro.synthetic.records import (
    ALL_KINDS,
    KIND_CCK,
    KIND_FIAT,
    KIND_LONG_SPAM,
    KIND_MTL_SPAM,
    KIND_SPIN,
    KIND_XRP,
    KIND_ZERO,
    OfferRecord,
    ReplayIntent,
    TransactionRecord,
    TrustEvent,
)
from repro.synthetic.workload import (
    PaymentSlot,
    build_schedule,
    payment_counts,
    zipf_maker_weights,
)

__all__ = [
    "ALL_KINDS",
    "NoSpamEconomyConfig",
    "build_no_spam",
    "dense_makers_config",
    "late_era_config",
    "no_spam_config",
    "AmountModel",
    "CURRENCY_SHARES",
    "Cast",
    "EconomyConfig",
    "Gateway",
    "KIND_CCK",
    "KIND_FIAT",
    "KIND_LONG_SPAM",
    "KIND_MTL_SPAM",
    "KIND_SPIN",
    "KIND_XRP",
    "KIND_ZERO",
    "LedgerHistoryGenerator",
    "MarketMaker",
    "OfferRecord",
    "PaymentSlot",
    "ReplayIntent",
    "SyntheticHistory",
    "TAIL_CURRENCIES",
    "TransactionRecord",
    "TrustEvent",
    "User",
    "build_cast",
    "build_schedule",
    "generate_history",
    "model_for",
    "payment_counts",
    "sample_amounts",
    "small_config",
    "survival_function",
    "zipf_maker_weights",
]
