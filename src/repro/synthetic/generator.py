"""The synthetic-history generator: three years of Ripple, replayed for real.

This is the substitution for the paper's 500 GB ledger download.  Instead of
parsing an archive, we *run* the economy: every IOU payment is routed and
executed through the actual payment engine against actual ledger state, so
path lengths, parallel paths, intermediary appearances, balances, and trust
structures in the output are consequences of the mechanics, not labels.

Outputs (in :class:`SyntheticHistory`):

* one :class:`~repro.synthetic.records.TransactionRecord` per payment —
  the Section V feature tuple plus path metadata;
* offer-placement records for the market-maker concentration statistics;
* a deep-copied ledger snapshot at the Table II date (Feb 2015) together
  with the replayable post-snapshot intents (payments, deposits, trust
  updates);
* the final ledger state, for the balance/trust profiling of Fig. 7.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.ledger.accounts import ACCOUNT_ZERO, AccountID, account_from_name
from repro.ledger.amounts import DROPS_PER_XRP, Amount
from repro.ledger.currency import Currency, eur_value
from repro.ledger.offers import Offer
from repro.ledger.state import LedgerState
from repro.payments.engine import PaymentEngine, PaymentResult
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.synthetic.actors import Cast, build_cast
from repro.synthetic.config import EconomyConfig
from repro.synthetic.distributions import sample_amounts
from repro.synthetic.records import (
    KIND_CCK,
    KIND_FIAT,
    KIND_LONG_SPAM,
    KIND_MTL_SPAM,
    KIND_SPIN,
    KIND_XRP,
    KIND_ZERO,
    OfferRecord,
    ReplayIntent,
    TransactionRecord,
    TrustEvent,
)
from repro.synthetic.workload import (
    PaymentSlot,
    build_schedule,
    offer_schedule,
    zipf_maker_weights,
)

#: Extra deposit factor when topping up a seat before a payment.  Kept
#: tight so fragmented deposits actually force parallel paths (a fat
#: surplus at one gateway would let a single path carry everything).
TOP_UP_FACTOR = 1.05
#: Live offers kept per order book (older ones are cancelled — books churn).
BOOK_DEPTH_CAP = 30
#: Probability a single-currency fiat payment stays within one gateway.
SAME_GATEWAY_PROBABILITY_MAJOR = 0.36
SAME_GATEWAY_PROBABILITY_TAIL = 0.31
#: Probability a CCK micro-payment stays within one hub's user group
#: (cross-hub payments ripple through both hubs).
SAME_HUB_PROBABILITY = 0.72
#: Probability a payment's liquidity is fragmented across several gateway
#: seats, forcing the path finder to split it over parallel paths.
SPLIT_PROBABILITY = 0.55
#: Parallel-path counts (2-4) and their weights for fragmented payments,
#: shaped after Fig. 6(b): 4 paths is the commonest split.
SPLIT_CHOICES = (2, 3, 4)
SPLIT_WEIGHTS = (0.22, 0.19, 0.59)
#: Fraction of offer placements made by one-off users (unfunded noise) —
#: the paper's top-100 makers place 87 % of offers; the rest is this tail.
USER_OFFER_SHARE = 0.13
#: Fraction of maker offers quoted directly between two IOU currencies
#: (the rest quote against XRP, the universal bridge).
DIRECT_BOOK_SHARE = 0.35
#: Probability a major-currency fiat payment is cross-currency.
CROSS_CURRENCY_PROBABILITY = 0.95
#: Probability the spend side of a cross-currency payment is XRP.
XRP_SPEND_PROBABILITY = 0.68

MAJOR_FIAT = ("BTC", "USD", "CNY", "JPY", "EUR")


@dataclass
class SyntheticHistory:
    """Everything the analyses read from the synthetic three-year run."""

    config: EconomyConfig
    cast: Cast
    state: LedgerState
    records: List[TransactionRecord] = field(default_factory=list)
    offer_records: List[OfferRecord] = field(default_factory=list)
    snapshot_state: Optional[LedgerState] = None
    replay_intents: List[ReplayIntent] = field(default_factory=list)
    trust_events: List[TrustEvent] = field(default_factory=list)
    failed_payments: int = 0

    @property
    def delivered_records(self) -> List[TransactionRecord]:
        return [record for record in self.records if record.delivered]

    def multi_hop_records(self) -> List[TransactionRecord]:
        """The Fig. 6 population: delivered, non-direct-XRP, ≥1 intermediate."""
        return [record for record in self.records if record.is_multi_hop]


class LedgerHistoryGenerator:
    """Builds a :class:`SyntheticHistory` for an :class:`EconomyConfig`."""

    def __init__(self, config: EconomyConfig):
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.state = LedgerState()
        currencies = [Currency(code) for code in config.currency_weights()]
        self.cast = build_cast(config, self.state, self.rng, currencies)
        self.engine = PaymentEngine(self.state)
        self.history = SyntheticHistory(
            config=config, cast=self.cast, state=self.state
        )
        # Seats: (user account -> {currency code -> gateway index}).
        self._seats: Dict[AccountID, Dict[str, int]] = {}
        for user in self.cast.users:
            self._seats[user.account] = {
                currency.code: gateway_index for gateway_index, currency in user.seats
            }
        self._user_accounts = [user.account for user in self.cast.users]
        self._sender_weights = np.array([user.activity for user in self.cast.users])
        self._sender_weights /= self._sender_weights.sum()
        receiver_perm = self.rng.permutation(len(self.cast.users))
        self._receiver_weights = self._sender_weights[receiver_perm]
        self._spammers = [
            self._mint_user(f"xrp-spammer-{index}") for index in range(4)
        ]
        # CCK hub membership: user i belongs to hub i mod n_hubs.
        n_hubs = max(1, len(self.cast.hubs))
        self._hub_group_weights = []
        for hub_index in range(n_hubs):
            weights = np.where(
                np.arange(len(self.cast.users)) % n_hubs == hub_index,
                self._receiver_weights,
                0.0,
            )
            total = weights.sum()
            self._hub_group_weights.append(weights / total if total > 0 else weights)
        self._user_hub = {
            user.account: index % n_hubs
            for index, user in enumerate(self.cast.users)
        }
        self._snapshot_taken = False
        self._offer_sequence = 0
        self._books: Dict[Tuple[str, str], Deque[Tuple[AccountID, int]]] = {}
        self._maker_weights = zipf_maker_weights(self.config)
        self._amount_cache: Dict[str, Tuple[np.ndarray, int]] = {}

    # Public ---------------------------------------------------------------------

    def generate(self) -> SyntheticHistory:
        """Run the whole history and return it."""
        with METRICS.timer("generator.generate"), \
                TRACER.span("synthetic.generate", payments=self.config.n_payments):
            slots = build_schedule(self.config, self.rng)
            offer_times = offer_schedule(self.config, self.rng)
            offer_cursor = 0
            for index, slot in enumerate(slots):
                while (
                    offer_cursor < len(offer_times)
                    and offer_times[offer_cursor] <= slot.timestamp
                ):
                    self._place_offer(int(offer_times[offer_cursor]))
                    offer_cursor += 1
                self._maybe_snapshot(slot.timestamp)
                self._execute_slot(index, slot)
            while offer_cursor < len(offer_times):
                self._place_offer(int(offer_times[offer_cursor]))
                offer_cursor += 1
            if METRICS.enabled:
                METRICS.count("generator.slots", len(slots))
                METRICS.count("generator.offers_scheduled", len(offer_times))
        return self.history

    # Actor helpers -----------------------------------------------------------------

    def _mint_user(self, name: str) -> AccountID:
        account = account_from_name(name, namespace="economy")
        root = self.state.create_account(account, self.config.activation_drops)
        root.allows_rippling = False
        self.cast.labels[account] = name
        return account

    def _pick_user(self, weights: np.ndarray, exclude: Optional[AccountID] = None) -> AccountID:
        for _ in range(4):
            index = int(self.rng.choice(len(self._user_accounts), p=weights))
            account = self._user_accounts[index]
            if account != exclude:
                return account
        return self._user_accounts[0]

    def _sample_amount(self, code: str) -> float:
        """Amortized per-currency amount sampling (vectorized in batches)."""
        cached = self._amount_cache.get(code)
        if cached is None or cached[1] >= len(cached[0]):
            batch = sample_amounts(Currency(code), self.rng, 512)
            self._amount_cache[code] = (batch, 0)
            cached = self._amount_cache[code]
        batch, cursor = cached
        self._amount_cache[code] = (batch, cursor + 1)
        return float(batch[cursor])

    # Liquidity management -------------------------------------------------------------

    def _ensure_xrp(self, account: AccountID, drops_needed: int) -> None:
        """Top an account up with XRP from ACCOUNT_ZERO (the distributor)."""
        balance = self.state.xrp_balance(account)
        if balance < drops_needed:
            self.state.transfer_xrp(
                ACCOUNT_ZERO, account, (drops_needed - balance) * 2
            )

    def _ensure_seat(
        self, account: AccountID, currency: Currency, gateway_index: Optional[int] = None
    ) -> int:
        """Make sure ``account`` has a trust seat for ``currency``.

        Returns the seat's gateway index, creating the trust line (and
        logging a post-snapshot trust event) when needed.
        """
        seats = self._seats.setdefault(account, {})
        current = seats.get(currency.code)
        if current is not None and (gateway_index is None or current == gateway_index):
            return current
        if gateway_index is None:
            candidates = self.cast.gateways_for(currency)
            gateway_index = int(candidates[self.rng.integers(0, len(candidates))])
        gateway = self.cast.gateways[gateway_index]
        if self.state.trust_line(account, gateway.account, currency) is None:
            limit = Amount.from_value(currency, 1e7)
            self.state.set_trust(account, gateway.account, limit)
            if self._snapshot_taken:
                self.history.trust_events.append(
                    TrustEvent(
                        timestamp=0,
                        truster=account,
                        trustee=gateway.account,
                        currency=currency.code,
                        limit=1e7,
                    )
                )
        seats[currency.code] = gateway_index
        return gateway_index

    def _ensure_deposit(
        self,
        account: AccountID,
        currency: Currency,
        gateway_index: int,
        amount: float,
        timestamp: int,
    ) -> None:
        """Deposit enough at the gateway to cover ``amount`` (issuance)."""
        gateway = self.cast.gateways[gateway_index]
        line = self.state.trust_line(account, gateway.account, currency)
        balance = line.balance.to_float() if line is not None else 0.0
        if balance >= amount:
            return
        deposit = (amount - balance) * TOP_UP_FACTOR
        limit = line.limit.to_float() if line is not None else 1e7
        deposit = min(deposit, max(0.0, limit - balance))
        if deposit <= 0:
            return
        self.state.apply_hop(
            gateway.account, account, Amount.from_value(currency, deposit)
        )
        if self._snapshot_taken:
            self.history.replay_intents.append(
                ReplayIntent(
                    timestamp=timestamp,
                    sender=gateway.account,
                    receiver=account,
                    amount=deposit,
                    currency=currency.code,
                    spend_currency=currency.code,
                    kind="deposit",
                )
            )

    def _split_count(self, issuers_available: int) -> int:
        """How many gateway seats to fragment liquidity across."""
        if issuers_available < 2 or self.rng.random() >= SPLIT_PROBABILITY:
            return 1
        k = int(
            self.rng.choice(np.array(SPLIT_CHOICES), p=np.array(SPLIT_WEIGHTS))
        )
        return min(k, issuers_available)

    def _fund_single_currency(
        self,
        sender: AccountID,
        currency: Currency,
        primary_gateway: int,
        amount: float,
        timestamp: int,
    ) -> None:
        """Deposit ``amount`` for the sender, possibly fragmented.

        With probability :data:`SPLIT_PROBABILITY` the deposit is spread
        over several gateways, so the payment must use parallel paths —
        the organic 2-4-path mass of Fig. 6(b).
        """
        issuers = self.cast.gateways_for(currency)
        k = self._split_count(len(issuers))
        if k <= 1:
            self._ensure_deposit(sender, currency, primary_gateway, amount, timestamp)
            return
        others = [g for g in issuers if g != primary_gateway]
        picked = [primary_gateway] + list(
            self.rng.choice(np.array(others), size=k - 1, replace=False)
        )
        share = amount / k * 1.12
        for gateway_index in picked:
            seat = self._ensure_seat(sender, currency, int(gateway_index))
            self._ensure_deposit(sender, currency, seat, share, timestamp)

    def _fund_spend_side(
        self,
        sender: AccountID,
        spend: Currency,
        cost_estimate: float,
        timestamp: int,
    ) -> None:
        """Fund the spend leg of a cross-currency payment (maybe split)."""
        issuers = self.cast.gateways_for(spend)
        k = self._split_count(len(issuers))
        if k <= 1:
            seat = self._ensure_seat(sender, spend)
            self._ensure_deposit(sender, spend, seat, cost_estimate, timestamp)
            return
        picked = self.rng.choice(np.array(issuers), size=k, replace=False)
        share = cost_estimate / k * 1.12
        for gateway_index in picked:
            seat = self._ensure_seat(sender, spend, int(gateway_index))
            self._ensure_deposit(sender, spend, seat, share, timestamp)

    # Snapshot ----------------------------------------------------------------------

    def _maybe_snapshot(self, timestamp: int) -> None:
        if self._snapshot_taken or timestamp < self.config.snapshot_time:
            return
        self.history.snapshot_state = copy.deepcopy(self.state)
        self._snapshot_taken = True

    def _log_replay(
        self,
        slot: PaymentSlot,
        sender: AccountID,
        receiver: AccountID,
        amount: float,
        spend_code: str,
        result: PaymentResult,
    ) -> None:
        """Record a delivered post-snapshot IOU payment for the replay."""
        if not self._snapshot_taken or not result.success:
            return
        if slot.timestamp > self.config.replay_end_time:
            return
        self.history.replay_intents.append(
            ReplayIntent(
                timestamp=slot.timestamp,
                sender=sender,
                receiver=receiver,
                amount=amount,
                currency=slot.currency,
                spend_currency=spend_code,
                kind=slot.kind,
            )
        )

    # Offers -------------------------------------------------------------------------

    def _place_offer(self, timestamp: int) -> None:
        if self.rng.random() < USER_OFFER_SHARE:
            # One-off user offers: counted in the concentration statistic,
            # but never competitive (terrible rate, cancelled immediately) —
            # the long tail behind the top-100 makers' 87 %.
            owner = self._pick_user(self._sender_weights)
            self.history.offer_records.append(
                OfferRecord(owner=owner, timestamp=timestamp)
            )
            return
        maker_index = int(
            self.rng.choice(len(self.cast.market_makers), p=self._maker_weights)
        )
        maker = self.cast.market_makers[maker_index]
        currency = maker.currencies[int(self.rng.integers(0, len(maker.currencies)))]
        xrp = Currency("XRP")
        spread = 1.0 + float(self.rng.uniform(0.002, 0.05))
        rate_xrp_per_unit = eur_value(currency) / eur_value(xrp)
        direct_peers = [c for c in maker.currencies if c != currency]
        if direct_peers and self.rng.random() < DIRECT_BOOK_SHARE:
            # Direct IOU/IOU book (e.g. USD -> EUR): slightly better than
            # chaining two XRP legs, so single-offer bridges win when deep
            # enough (shorter payment paths, as in Fig. 6(a)).
            other = direct_peers[int(self.rng.integers(0, len(direct_peers)))]
            rate = eur_value(other) / eur_value(currency)
            gets_value = float(self.rng.lognormal(np.log(5e4), 1.2))
            taker_gets = Amount.from_value(other, gets_value)
            taker_pays = Amount.from_value(
                currency, gets_value * rate * (1.0 + (spread - 1.0) * 1.4)
            )
        elif self.rng.random() < 0.5:
            # Book: taker pays XRP, gets `currency` (maker sells currency).
            gets_value = float(self.rng.lognormal(np.log(5e4), 1.2))
            taker_gets = Amount.from_value(currency, gets_value)
            taker_pays = Amount.from_value(xrp, gets_value * rate_xrp_per_unit * spread)
        else:
            # Book: taker pays `currency`, gets XRP (maker buys currency).
            gets_value = float(self.rng.lognormal(np.log(5e4 * rate_xrp_per_unit), 1.2))
            taker_gets = Amount.from_value(xrp, gets_value)
            taker_pays = Amount.from_value(
                currency, gets_value / rate_xrp_per_unit * spread
            )
        self._offer_sequence += 1
        offer = Offer(
            owner=maker.account,
            sequence=self._offer_sequence,
            taker_pays=taker_pays,
            taker_gets=taker_gets,
        )
        self.state.place_offer(offer)
        self.history.offer_records.append(
            OfferRecord(owner=maker.account, timestamp=timestamp)
        )
        # Cap book depth by cancelling the oldest live offer.
        book = self._books.setdefault(offer.book_key, deque())
        book.append(offer.offer_id())
        while len(book) > BOOK_DEPTH_CAP:
            owner, sequence = book.popleft()
            self.state.cancel_offer(owner, sequence)

    # Payment execution ----------------------------------------------------------------

    def _execute_slot(self, index: int, slot: PaymentSlot) -> None:
        if slot.kind == KIND_XRP:
            self._pay_xrp(index, slot)
        elif slot.kind == KIND_SPIN:
            self._pay_spin(index, slot)
        elif slot.kind == KIND_ZERO:
            self._pay_account_zero(index, slot)
        elif slot.kind == KIND_CCK:
            self._pay_cck(index, slot)
        elif slot.kind == KIND_FIAT:
            self._pay_fiat(index, slot)
        elif slot.kind in (KIND_MTL_SPAM, KIND_LONG_SPAM):
            self._pay_mtl(index, slot)
        else:  # pragma: no cover - schedule only emits known kinds
            raise AssertionError(f"unknown slot kind {slot.kind}")

    def _record(
        self,
        index: int,
        slot: PaymentSlot,
        sender: AccountID,
        receiver: AccountID,
        amount: float,
        result: PaymentResult,
        is_xrp_direct: bool,
    ) -> None:
        if not result.success:
            self.history.failed_payments += 1
        self.history.records.append(
            TransactionRecord(
                index=index,
                timestamp=slot.timestamp,
                sender=sender,
                destination=receiver,
                currency=slot.currency,
                amount=round(amount, 6),
                is_xrp_direct=is_xrp_direct,
                cross_currency=result.is_cross_currency,
                intermediate_hops=result.intermediate_hops,
                parallel_paths=result.parallel_paths,
                intermediaries=tuple(result.intermediaries),
                delivered=result.success,
                kind=slot.kind,
            )
        )

    def _pay_xrp(self, index: int, slot: PaymentSlot) -> None:
        sender = self._pick_user(self._sender_weights)
        receiver = self._pick_user(self._receiver_weights, exclude=sender)
        amount = min(self._sample_amount("XRP"), 5e6)
        drops = int(round(amount * DROPS_PER_XRP))
        self._ensure_xrp(sender, drops + 1000)
        result = self.engine.submit(sender, receiver, Amount.from_value(Currency("XRP"), amount))
        self._record(index, slot, sender, receiver, amount, result, is_xrp_direct=True)

    def _pay_spin(self, index: int, slot: PaymentSlot) -> None:
        sender = self._pick_user(self._sender_weights)
        receiver = self.cast.special["ripple_spin"]
        amount = float(np.clip(self.rng.lognormal(np.log(20.0), 1.0), 0.5, 2e4))
        self._ensure_xrp(sender, int(amount * DROPS_PER_XRP) + 1000)
        result = self.engine.submit(sender, receiver, Amount.from_value(Currency("XRP"), amount))
        self._record(index, slot, sender, receiver, amount, result, is_xrp_direct=True)

    def _pay_account_zero(self, index: int, slot: PaymentSlot) -> None:
        spammer = self._spammers[int(self.rng.integers(0, len(self._spammers)))]
        amount = float(np.round(self.rng.uniform(0.000011, 0.5), 6))
        if self.rng.random() < 0.5:
            sender, receiver = spammer, ACCOUNT_ZERO
            self._ensure_xrp(sender, DROPS_PER_XRP)
        else:
            sender, receiver = ACCOUNT_ZERO, spammer
        result = self.engine.submit(sender, receiver, Amount.from_value(Currency("XRP"), amount))
        self._record(index, slot, sender, receiver, amount, result, is_xrp_direct=True)

    def _pay_cck(self, index: int, slot: PaymentSlot) -> None:
        sender = self._pick_user(self._sender_weights)
        if self.rng.random() < SAME_HUB_PROBABILITY:
            group = self._user_hub.get(sender, 0)
            receiver = self._pick_user(
                self._hub_group_weights[group], exclude=sender
            )
        else:
            receiver = self._pick_user(self._receiver_weights, exclude=sender)
        amount = self._sample_amount("CCK")
        currency = Currency("CCK")
        result = self.engine.submit(
            sender, receiver, Amount.from_value(currency, amount), allow_offers=False
        )
        self._record(index, slot, sender, receiver, amount, result, is_xrp_direct=False)
        self._log_replay(slot, sender, receiver, amount, "CCK", result)

    def _pay_fiat(self, index: int, slot: PaymentSlot) -> None:
        currency = Currency(slot.currency)
        is_major = slot.currency in MAJOR_FIAT
        cross = is_major and self.rng.random() < CROSS_CURRENCY_PROBABILITY

        sender = self._pick_user(self._sender_weights)
        receiver = self._pick_user(self._receiver_weights, exclude=sender)
        amount = min(self._sample_amount(slot.currency), 2e5)

        receiver_gateway = self._ensure_seat(receiver, currency)

        if cross:
            spend_is_xrp = self.rng.random() < XRP_SPEND_PROBABILITY
            if spend_is_xrp:
                spend = Currency("XRP")
                cost_estimate = amount * eur_value(currency) / eur_value(spend)
                self._ensure_xrp(
                    sender, int(cost_estimate * 1.5 * DROPS_PER_XRP) + 1000
                )
            else:
                others = [code for code in MAJOR_FIAT if code != slot.currency]
                spend = Currency(others[int(self.rng.integers(0, len(others)))])
                cost_estimate = amount * eur_value(currency) / eur_value(spend)
                self._fund_spend_side(
                    sender, spend, cost_estimate * 1.15, slot.timestamp
                )
            result = self.engine.submit(
                sender,
                receiver,
                Amount.from_value(currency, amount),
                send_max=Amount.from_value(spend, amount * 10),
            )
            self._record(index, slot, sender, receiver, amount, result, is_xrp_direct=False)
            self._log_replay(slot, sender, receiver, amount, spend.code, result)
            return

        # Single-currency: decide whether sender sits at the same gateway.
        same_probability = (
            SAME_GATEWAY_PROBABILITY_MAJOR if is_major else SAME_GATEWAY_PROBABILITY_TAIL
        )
        issuers = self.cast.gateways_for(currency)
        if self.rng.random() < same_probability or len(issuers) < 2:
            sender_gateway = self._ensure_seat(sender, currency, receiver_gateway)
        else:
            others = [g for g in issuers if g != receiver_gateway]
            sender_gateway = self._ensure_seat(
                sender, currency, int(others[self.rng.integers(0, len(others))])
            )
        self._fund_single_currency(
            sender, currency, sender_gateway, amount, slot.timestamp
        )
        result = self.engine.submit(
            sender, receiver, Amount.from_value(currency, amount), allow_offers=False
        )
        self._record(index, slot, sender, receiver, amount, result, is_xrp_direct=False)
        self._log_replay(slot, sender, receiver, amount, slot.currency, result)

    def _pay_mtl(self, index: int, slot: PaymentSlot) -> None:
        attacker = self.cast.special["mtl_attacker"]
        sink = self.cast.special["mtl_sink"]
        amount = self._sample_amount("MTL")
        currency = Currency("MTL")
        if slot.kind == KIND_LONG_SPAM:
            paths = [([attacker] + self.cast.long_chain + [sink], amount)]
        else:
            share = amount / len(self.cast.mtl_chains)
            paths = [
                ([attacker] + chain + [sink], share)
                for chain in self.cast.mtl_chains
            ]
        result = self.engine.submit(
            attacker,
            sink,
            Amount.from_value(currency, amount),
            forced_paths=paths,
        )
        self._record(index, slot, attacker, sink, amount, result, is_xrp_direct=False)
        self._log_replay(slot, attacker, sink, amount, "MTL", result)


@lru_cache(maxsize=4)
def generate_history(config: EconomyConfig) -> SyntheticHistory:
    """Generate (and memoize) the history for ``config``.

    Benchmarks for different figures share one generated history, the same
    way the paper's analyses all read one ledger download.
    """
    return LedgerHistoryGenerator(config).generate()
