"""The cast of the synthetic Ripple economy and its trust topology.

The appendix of the paper identifies distinct actor classes with sharply
different ledger footprints (Fig. 7):

* **Gateways** — the Ripple equivalent of banks: huge *incoming* trust,
  almost no outgoing trust (17/20 declare none), strictly negative
  balances (they issue IOUs against off-ledger deposits).  We name ours
  after the gateways in Fig. 7 (SnapSwap, Ripple Fox, Bitstamp, ...).
* **Hubs** — the two most path-central accounts (``rp2PaY...``,
  ``r42Ccn...``) are *not* gateways; both were activated by ``~akhavr``
  and relay an order of magnitude more payments than anyone else.  In our
  economy they are the conduits of the CCK micro-payment swarm.
* **Market makers** — place nearly all exchange offers (top-10 place 50 %)
  and hold balances at many gateways in many currencies, which makes them
  the connective tissue for cross-gateway payments (Table II).
* **Users** — deposit at one or a few gateways, hold positive balances,
  and trust at least one gateway to join the network.
* **Special accounts** — ``ACCOUNT_ZERO`` (public secret key, spam sink),
  ``~Ripple Spin`` (the 2015 XRP gambling service), the MTL spam attacker
  with its fixed 8-hop × 6-path chain topology, and the 44-hop outlier
  chain seen in Fig. 6(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ledger.accounts import ACCOUNT_ZERO, AccountID, account_from_name
from repro.ledger.amounts import Amount
from repro.ledger.currency import Currency, eur_value
from repro.ledger.state import LedgerState
from repro.synthetic.config import EconomyConfig

#: Gateway names from Fig. 7, with their principal currencies.
GATEWAY_CATALOG: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("SnapSwap", ("USD", "EUR", "BTC")),
    ("Ripple Fox", ("CNY",)),
    ("Bitstamp", ("BTC", "USD")),
    ("RippleChina", ("CNY",)),
    ("Ripple Trade Japan", ("JPY",)),
    ("rippleCN", ("CNY",)),
    ("Justcoin", ("BTC", "EUR")),
    ("The Rock Trading", ("BTC", "EUR", "USD")),
    ("TokyoJPY", ("JPY",)),
    ("Dividend Rippler", ("BTC", "USD")),
    ("Ripple Exchange Tokyo", ("JPY", "BTC")),
    ("Digital Gate Japan", ("JPY",)),
    ("Payroutes", ("USD",)),
    ("Mr. Ripple", ("JPY", "BTC")),
    ("WisePass", ("USD", "EUR")),
    ("Bitso", ("MXN", "BTC")),
    ("DotPayco", ("USD",)),
    ("Coinex", ("NZD", "BTC")),
    ("Ripple LatAm", ("USD", "BRL")),
    ("Ripple Singapore", ("XAU", "USD", "BTC")),
)

#: The two hyper-central non-gateway hubs of Fig. 7(a) and their activator.
HUB_NAMES: Tuple[str, str] = ("rp2PaY...X1mEx7", "r42Ccn...Xqm5M3")
HUB_ACTIVATOR = "~akhavr"
RIPPLE_SPIN = "~Ripple Spin"
MTL_ATTACKER = "mtl-attacker"
MTL_SINK = "mtl-sink"

#: Huge trust limit used on the spam-chain lines (the attacker piled up
#: debt of the order of 1e22 — the limit must not bind).
INFRA_LIMIT = 1e30
#: EUR-equivalent working deposit a maker keeps at each gateway per
#: currency; converted to currency units via the market value.
MAKER_DEPOSIT_EUR = 2e6
#: Trust a hub extends to each CCK participant (micro-payments only).
HUB_CCK_LIMIT = 100.0
#: Mutual CCK credit between the two hubs (cross-hub micro-payment flow).
HUB_PEER_LIMIT = 1e6


@dataclass
class Gateway:
    account: AccountID
    name: str
    currencies: Tuple[Currency, ...]


@dataclass
class MarketMaker:
    account: AccountID
    name: str
    #: currencies this maker trades against XRP (and occasionally directly).
    currencies: Tuple[Currency, ...]


@dataclass
class User:
    account: AccountID
    name: str
    #: (gateway index, currency) pairs where the user keeps deposits.
    seats: Tuple[Tuple[int, Currency], ...]
    #: relative sending activity (Zipf-distributed across users).
    activity: float = 1.0


@dataclass
class Cast:
    """Every actor of the economy plus lookup helpers."""

    gateways: List[Gateway] = field(default_factory=list)
    hubs: List[AccountID] = field(default_factory=list)
    market_makers: List[MarketMaker] = field(default_factory=list)
    users: List[User] = field(default_factory=list)
    special: Dict[str, AccountID] = field(default_factory=dict)
    #: MTL spam chains: per parallel path, the ordered intermediate nodes.
    mtl_chains: List[List[AccountID]] = field(default_factory=list)
    #: the 44-hop outlier chain of Fig. 6(a).
    long_chain: List[AccountID] = field(default_factory=list)
    labels: Dict[AccountID, str] = field(default_factory=dict)

    def label(self, account: AccountID) -> str:
        return self.labels.get(account, account.short())

    def gateway_accounts(self) -> List[AccountID]:
        return [gateway.account for gateway in self.gateways]

    def market_maker_accounts(self) -> List[AccountID]:
        return [maker.account for maker in self.market_makers]

    def is_gateway(self, account: AccountID) -> bool:
        return any(gateway.account == account for gateway in self.gateways)

    def gateways_for(self, currency: Currency) -> List[int]:
        """Indices of gateways issuing ``currency``."""
        return [
            index
            for index, gateway in enumerate(self.gateways)
            if currency in gateway.currencies
        ]


def _mint(cast: Cast, state: LedgerState, name: str, drops: int) -> AccountID:
    account = account_from_name(name, namespace="economy")
    state.create_account(account, drops)
    cast.labels[account] = name
    return account


def build_cast(
    config: EconomyConfig,
    state: LedgerState,
    rng: np.random.Generator,
    currencies: Sequence[Currency],
) -> Cast:
    """Create all actors, fund them, and wire the trust topology.

    ``currencies`` is the full list of currencies in play (majors + tail);
    tail currencies are each adopted by a gateway so every currency has an
    issuer.
    """
    cast = Cast()
    drops = config.activation_drops

    # ACCOUNT_ZERO exists from genesis with the undistributed XRP supply.
    state.create_account(ACCOUNT_ZERO, 10 ** 11 * 10 ** 6)
    cast.special["account_zero"] = ACCOUNT_ZERO
    cast.labels[ACCOUNT_ZERO] = "ACCOUNT_ZERO"

    # --- Gateways -----------------------------------------------------------
    catalog = list(GATEWAY_CATALOG)
    while len(catalog) < config.n_gateways:
        catalog.append((f"Gateway-{len(catalog)}", ("USD",)))
    tail = [c for c in currencies if c.code not in ("XRP",)]
    for index in range(config.n_gateways):
        name, codes = catalog[index % len(catalog)]
        if index >= len(GATEWAY_CATALOG):
            name = f"{name}#{index}"
        issued = [Currency(code) for code in codes]
        account = _mint(cast, state, name, drops * 10)
        state.account(account).is_gateway = True
        cast.gateways.append(Gateway(account=account, name=name, currencies=tuple(issued)))
    # Adopt tail currencies round-robin, two issuing gateways each, so that
    # cross-gateway payments exist even in tail currencies.
    majors = {"XRP", "BTC", "USD", "EUR", "CNY", "JPY", "CCK", "MTL"}
    tail_adoptions: List[Tuple[Currency, Tuple[int, int]]] = []
    for offset, currency in enumerate(c for c in tail if c.code not in majors):
        first = offset % len(cast.gateways)
        second = (offset + 1 + offset // len(cast.gateways)) % len(cast.gateways)
        if second == first:
            second = (first + 1) % len(cast.gateways)
        for gateway_index in (first, second):
            gateway = cast.gateways[gateway_index]
            gateway.currencies = gateway.currencies + (currency,)
        tail_adoptions.append((currency, (first, second)))

    # Sparse direct gateway-to-gateway trust: only a few gateways declare
    # any outgoing trust at all (the paper finds 17/20 declare none), and
    # only in their principal (major) currencies.
    major_codes = {"BTC", "USD", "EUR", "CNY", "JPY"}
    for index, gateway in enumerate(cast.gateways[:3]):
        peer = cast.gateways[(index + 1) % len(cast.gateways)]
        shared = set(gateway.currencies) & set(peer.currencies)
        for currency in shared:
            if currency.code not in major_codes:
                continue
            state.set_trust(
                gateway.account, peer.account, Amount.from_value(currency, 5e5)
            )

    # --- Hubs (the CCK conduits) ---------------------------------------------
    activator = _mint(cast, state, HUB_ACTIVATOR, drops * 5)
    cast.special["akhavr"] = activator
    cck = Currency("CCK")
    for hub_name in HUB_NAMES:
        hub = _mint(cast, state, hub_name, drops * 20)
        cast.hubs.append(hub)
        # Hubs keep working balances at a few gateways in BTC (credit —
        # the positive balances of Fig. 7(c)).
        for gateway in cast.gateways[:4]:
            btc = Currency("BTC")
            if btc in gateway.currencies:
                state.set_trust(hub, gateway.account, Amount.from_value(btc, 1e4))
                state.apply_hop(gateway.account, hub, Amount.from_value(btc, 2e3))

    # --- Market makers ----------------------------------------------------------
    # Makers hold serious XRP inventory (they quote the XRP auto-bridge).
    maker_drops = 10 ** 8 * 10 ** 6
    major_ious = [Currency(code) for code in ("BTC", "USD", "CNY", "JPY", "EUR")]
    for index in range(config.n_market_makers):
        name = f"maker-{index:03d}"
        account = _mint(cast, state, name, maker_drops)
        state.account(account).is_market_maker = True
        count = int(rng.integers(2, len(major_ious) + 1))
        picks = rng.choice(len(major_ious), size=count, replace=False)
        traded = tuple(major_ious[i] for i in sorted(picks))
        cast.market_makers.append(
            MarketMaker(account=account, name=name, currencies=traded)
        )
        # Makers hold deep balances at every gateway issuing their
        # currencies: this is what lets them relay cross-gateway payments.
        for currency in traded:
            deposit = MAKER_DEPOSIT_EUR / eur_value(currency)
            for gateway_index in cast.gateways_for(currency):
                gateway = cast.gateways[gateway_index]
                state.set_trust(
                    account, gateway.account, Amount.from_value(currency, deposit * 10)
                )
                state.apply_hop(
                    gateway.account, account, Amount.from_value(currency, deposit)
                )
                # No gateway->maker trust: value flows maker -> gateway by
                # settling the maker's deposit, so gateways keep the
                # no-outgoing-trust profile of Fig. 7(b).

    # Tail-currency connectors: a few makers hold balances at both issuing
    # gateways of each tail currency, so cross-gateway tail payments route
    # through them (and fail when market makers are removed — Table II).
    for offset, (currency, gateway_indices) in enumerate(tail_adoptions):
        for maker_offset in range(3):
            maker = cast.market_makers[
                (offset * 3 + maker_offset) % len(cast.market_makers)
            ]
            for gateway_index in gateway_indices:
                gateway = cast.gateways[gateway_index]
                line = state.trust_line(maker.account, gateway.account, currency)
                if line is None:
                    deposit = MAKER_DEPOSIT_EUR / eur_value(currency)
                    state.set_trust(
                        maker.account,
                        gateway.account,
                        Amount.from_value(currency, deposit * 10),
                    )
                    state.apply_hop(
                        gateway.account, maker.account, Amount.from_value(currency, deposit)
                    )

    # --- Users ---------------------------------------------------------------------
    activity = 1.0 / np.arange(1, config.n_users + 1) ** 0.8
    activity = activity / activity.sum()
    order = rng.permutation(config.n_users)
    for index in range(config.n_users):
        name = f"user-{index:04d}"
        account = _mint(cast, state, name, drops)
        seat_count = int(rng.integers(1, 4))
        seats: List[Tuple[int, Currency]] = []
        for _ in range(seat_count):
            gateway_index = int(rng.integers(0, len(cast.gateways)))
            gateway = cast.gateways[gateway_index]
            currency = gateway.currencies[int(rng.integers(0, len(gateway.currencies)))]
            if (gateway_index, currency) in seats:
                continue
            seats.append((gateway_index, currency))
            state.set_trust(
                account, gateway.account, Amount.from_value(currency, 1e6)
            )
        # Every user joins the CCK swarm through exactly one hub; the hub
        # reciprocates with a micro-credit line.  Cross-hub payments then
        # ripple hubA -> hubB, putting *both* hubs on the path.
        hub = cast.hubs[index % len(cast.hubs)]
        state.set_trust(account, hub, Amount.from_value(cck, 1e5))
        state.set_trust(hub, account, Amount.from_value(cck, HUB_CCK_LIMIT))
        state.account(account).allows_rippling = False
        cast.users.append(
            User(
                account=account,
                name=name,
                seats=tuple(seats),
                activity=float(activity[order[index]]),
            )
        )

    # The hubs extend generous CCK credit to each other, so micro-payments
    # between users of different hubs flow user -> hubA -> hubB -> user.
    if len(cast.hubs) >= 2:
        first, second = cast.hubs[0], cast.hubs[1]
        state.set_trust(first, second, Amount.from_value(cck, HUB_PEER_LIMIT))
        state.set_trust(second, first, Amount.from_value(cck, HUB_PEER_LIMIT))

    # --- Special accounts ----------------------------------------------------------
    spin = _mint(cast, state, RIPPLE_SPIN, drops)
    cast.special["ripple_spin"] = spin

    mtl = Currency("MTL")
    attacker = _mint(cast, state, MTL_ATTACKER, drops * 100)
    sink = _mint(cast, state, MTL_SINK, drops)
    cast.special["mtl_attacker"] = attacker
    cast.special["mtl_sink"] = sink
    for path_index in range(config.mtl_spam_parallel_paths):
        chain: List[AccountID] = []
        previous = attacker
        for hop_index in range(config.mtl_spam_hops):
            node = _mint(cast, state, f"mtl-relay-{path_index}-{hop_index}", drops)
            state.set_trust(node, previous, Amount.from_value(mtl, INFRA_LIMIT))
            chain.append(node)
            previous = node
        state.set_trust(sink, previous, Amount.from_value(mtl, INFRA_LIMIT))
        cast.mtl_chains.append(chain)

    # The 44-intermediate-hop outlier chain of Fig. 6(a).
    previous = attacker
    for hop_index in range(44):
        node = _mint(cast, state, f"mtl-long-{hop_index}", drops)
        state.set_trust(node, previous, Amount.from_value(mtl, INFRA_LIMIT))
        cast.long_chain.append(node)
        previous = node
    state.set_trust(sink, previous, Amount.from_value(mtl, INFRA_LIMIT))

    return cast
