"""Workload composition: what gets paid, when, by whom.

This module turns the :class:`~repro.synthetic.config.EconomyConfig` into a
chronological schedule of *payment slots*: (timestamp, kind, currency)
triples whose composition matches the paper's measured mix — 49 % XRP
(with the ~Ripple Spin and ACCOUNT_ZERO sub-flows), the CCK micro-payment
swarm, the MTL spam campaign, and the fiat long tail of Fig. 4.

Temporal structure matters for the de-anonymization study (the timestamp is
the strongest single feature in Fig. 3), so each flow gets its own arrival
profile: overall volume grows over the three years, CCK is front-loaded
(an early crafted currency), the MTL attack is a mid-2014 campaign, and
~Ripple Spin only exists after its 2015 launch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.consensus.engine import CLOSE_INTERVAL_SECONDS
from repro.synthetic.config import EconomyConfig
from repro.synthetic.records import (
    KIND_CCK,
    KIND_FIAT,
    KIND_LONG_SPAM,
    KIND_MTL_SPAM,
    KIND_SPIN,
    KIND_XRP,
    KIND_ZERO,
)


@dataclass(frozen=True)
class PaymentSlot:
    """One scheduled payment before actor/amount selection."""

    timestamp: int
    kind: str
    currency: str


def _quantize(times: np.ndarray) -> np.ndarray:
    """Snap raw times to the 5-second ledger-close grid (the paper's
    timestamp is the close time of the sealing page)."""
    grid = CLOSE_INTERVAL_SECONDS
    return (np.asarray(times, dtype=np.int64) // grid) * grid


def _growth_times(
    config: EconomyConfig, rng: np.random.Generator, size: int
) -> np.ndarray:
    """Arrival times with rate growing over the period (t ∝ u^growth)."""
    u = rng.random(size) ** config.growth
    span = config.end_time - config.start_time
    return _quantize(config.start_time + u * span)


def _beta_times(
    config: EconomyConfig,
    rng: np.random.Generator,
    size: int,
    a: float,
    b: float,
    start: int = None,
    end: int = None,
) -> np.ndarray:
    start = config.start_time if start is None else start
    end = config.end_time if end is None else end
    u = rng.beta(a, b, size)
    return _quantize(start + u * (end - start))


def payment_counts(config: EconomyConfig) -> Dict[str, int]:
    """How many payments of each kind the run generates.

    Shares follow the paper: XRP 49 % of everything, of which ~10 % goes to
    ~Ripple Spin and ~9 % to ACCOUNT_ZERO; MTL and CCK from Fig. 4; the
    long-spam outlier is a token handful.
    """
    n = config.n_payments
    weights = config.currency_weights()
    n_xrp_total = int(round(weights.get("XRP", 0.0) * n))
    n_spin = int(round(n_xrp_total * config.ripple_spin_share))
    n_zero = int(round(n_xrp_total * config.account_zero_share))
    n_cck = int(round(weights.get("CCK", 0.0) * n))
    n_mtl = int(round(weights.get("MTL", 0.0) * n))
    # The 44-hop outlier only exists alongside the spam campaign.
    n_long = max(3, n // 20_000) if n_mtl else 0
    counted = n_xrp_total + n_cck + n_mtl + n_long
    n_fiat = max(0, n - counted)
    return {
        KIND_XRP: n_xrp_total - n_spin - n_zero,
        KIND_SPIN: n_spin,
        KIND_ZERO: n_zero,
        KIND_CCK: n_cck,
        KIND_MTL_SPAM: n_mtl,
        KIND_LONG_SPAM: n_long,
        KIND_FIAT: n_fiat,
    }


def fiat_currency_weights(config: EconomyConfig) -> Tuple[List[str], np.ndarray]:
    """Currencies and normalized weights for the fiat/IOU payment mass."""
    weights = config.currency_weights()
    for reserved in ("XRP", "CCK", "MTL"):
        weights.pop(reserved, None)
    codes = sorted(weights)
    mass = np.array([weights[code] for code in codes])
    return codes, mass / mass.sum()


def build_schedule(
    config: EconomyConfig, rng: np.random.Generator
) -> List[PaymentSlot]:
    """The full chronological payment schedule."""
    counts = payment_counts(config)
    slots: List[PaymentSlot] = []

    # Plain XRP payments and the ACCOUNT_ZERO spam grow with the system.
    for t in _growth_times(config, rng, counts[KIND_XRP]):
        slots.append(PaymentSlot(int(t), KIND_XRP, "XRP"))
    for t in _growth_times(config, rng, counts[KIND_ZERO]):
        slots.append(PaymentSlot(int(t), KIND_ZERO, "XRP"))

    # ~Ripple Spin bets exist only after the site launched in 2015.
    spin_times = _beta_times(
        config,
        rng,
        counts[KIND_SPIN],
        a=1.2,
        b=1.0,
        start=config.spin_launch_time,
        end=config.end_time,
    )
    for t in spin_times:
        slots.append(PaymentSlot(int(t), KIND_SPIN, "XRP"))

    # CCK was crafted early in the system's life; its swarm is almost
    # entirely over before the Table II snapshot window.
    for t in _beta_times(config, rng, counts[KIND_CCK], a=1.2, b=5.0):
        slots.append(PaymentSlot(int(t), KIND_CCK, "CCK"))

    # The MTL campaign is a concentrated mid-2014 burst, over well before
    # the Table II snapshot window.
    for t in _beta_times(
        config, rng, counts[KIND_MTL_SPAM], a=9.0, b=8.0,
        end=config.snapshot_time,
    ):
        slots.append(PaymentSlot(int(t), KIND_MTL_SPAM, "MTL"))
    for t in _beta_times(
        config, rng, counts[KIND_LONG_SPAM], a=9.0, b=8.0,
        end=config.snapshot_time,
    ):
        slots.append(PaymentSlot(int(t), KIND_LONG_SPAM, "MTL"))

    # Fiat & tail-currency IOU payments, currency drawn per Fig. 4 weights.
    codes, weights = fiat_currency_weights(config)
    picks = rng.choice(len(codes), size=counts[KIND_FIAT], p=weights)
    for t, pick in zip(_growth_times(config, rng, counts[KIND_FIAT]), picks):
        slots.append(PaymentSlot(int(t), KIND_FIAT, codes[pick]))

    slots.sort(key=lambda slot: slot.timestamp)
    return slots


def offer_schedule(
    config: EconomyConfig, rng: np.random.Generator
) -> np.ndarray:
    """Placement times for exchange offers (same growth profile)."""
    return np.sort(_growth_times(config, rng, config.n_offers))


def zipf_maker_weights(config: EconomyConfig) -> np.ndarray:
    """Offer-placement weights across market makers.

    Calibrated so the top 10 / 50 / 100 makers place roughly 50 / 75 / 87 %
    of all offers, the concentration reported in the appendix.
    """
    ranks = np.arange(1, config.n_market_makers + 1, dtype=float)
    weights = ranks ** (-config.offer_zipf_exponent)
    return weights / weights.sum()
