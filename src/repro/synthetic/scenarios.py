"""Alternative economy scenarios, for ablations and what-if studies.

The default :class:`~repro.synthetic.config.EconomyConfig` mirrors the
paper's measured Ripple.  The scenarios here change one structural thing at
a time, so analyses can attribute results to causes:

* **no_spam** — the counterfactual Ripple without the CCK swarm, the MTL
  campaign, and the ACCOUNT_ZERO/gambling flows: what would Figs. 4-6 have
  looked like if nobody had attacked the ledger?
* **late_era** — only the mature period (2015): the system after its
  growth phase, when spam had subsided.
* **dense_makers** — twice the market makers with flatter concentration:
  how much less fragile does Table II get when liquidity provision is
  decentralized?

Every scenario is an honest re-parameterization of the same generator —
nothing is post-processed.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Dict

from repro.ledger.transactions import to_ripple_time
from repro.synthetic.config import CURRENCY_SHARES, EconomyConfig


def no_spam_config(base: EconomyConfig = None) -> EconomyConfig:
    """The economy with every crafted flow removed.

    CCK and MTL mass is re-distributed proportionally over the legitimate
    currencies; ~Ripple Spin and ACCOUNT_ZERO flows are zeroed.
    """
    base = base or EconomyConfig()
    return dataclasses.replace(
        base,
        seed=base.seed + 1,
        ripple_spin_share=0.0,
        account_zero_share=0.0,
    )


#: Currency weights with the spam currencies removed (renormalized).
def no_spam_currency_weights() -> Dict[str, float]:
    weights = {
        code: share
        for code, share in CURRENCY_SHARES.items()
        if code not in ("CCK", "MTL")
    }
    total = sum(weights.values())
    return {code: share / total for code, share in weights.items()}


class NoSpamEconomyConfig(EconomyConfig):
    """EconomyConfig whose CCK/MTL payment mass is zero.

    Subclassing keeps the frozen dataclass semantics while overriding the
    share map the workload builder consults.
    """

    def currency_weights(self) -> Dict[str, float]:
        weights = super().currency_weights()
        removed = weights.pop("CCK", 0.0) + weights.pop("MTL", 0.0)
        total = sum(weights.values())
        return {
            code: share * (1.0 + removed / total)
            for code, share in weights.items()
        }


def build_no_spam(n_payments: int = 8_000, seed: int = 101) -> NoSpamEconomyConfig:
    """A ready-to-run spam-free economy."""
    return NoSpamEconomyConfig(
        seed=seed,
        n_payments=n_payments,
        n_users=max(100, n_payments // 33),
        n_gateways=12,
        n_market_makers=60,
        n_offers=n_payments * 4,
        ripple_spin_share=0.0,
        account_zero_share=0.0,
    )


def late_era_config(n_payments: int = 8_000, seed: int = 102) -> EconomyConfig:
    """Only the mature 2015 period (post-spam, pre-study-end)."""
    return EconomyConfig(
        seed=seed,
        n_payments=n_payments,
        n_users=max(100, n_payments // 33),
        n_gateways=12,
        n_market_makers=60,
        n_offers=n_payments * 4,
        start_time=to_ripple_time(_dt.datetime(2015, 1, 1, tzinfo=_dt.timezone.utc)),
        snapshot_time=to_ripple_time(_dt.datetime(2015, 2, 1, tzinfo=_dt.timezone.utc)),
        growth=1.0,  # steady state: no further acceleration
    )


def dense_makers_config(n_payments: int = 8_000, seed: int = 103) -> EconomyConfig:
    """Twice the makers, flatter offer concentration (takeover-resistant)."""
    return EconomyConfig(
        seed=seed,
        n_payments=n_payments,
        n_users=max(100, n_payments // 33),
        n_gateways=12,
        n_market_makers=240,
        n_offers=n_payments * 4,
        offer_zipf_exponent=0.4,
    )
