"""A full simulated rippled node: submission, consensus, application, chain.

``RippledNode`` wires every substrate together the way a real server does:

1. clients **submit** signed transactions; the node runs the static and
   signature prechecks and queues survivors in the open-ledger pool;
2. each **consensus round** proposes the pool to the validator network;
   the agreed transaction set comes back from RPCA;
3. agreed transactions are **applied in canonical order** (sorted by hash,
   rippled's deterministic shuffle) against the ledger state — including
   ``tec`` failures, which claim their fee and their ledger slot;
4. the applied set is **sealed** into a new ledger page whose close time
   is the authoritative payment timestamp — the exact field the paper's
   de-anonymization study reads off the public ledger.

The node has real resilience semantics: a failed consensus round is
retried under a :class:`RetryPolicy` (exponential backoff with jitter in
simulated time), and when retries are exhausted an opt-in *degraded mode*
seals the plurality page off a reduced quorum, recording
``validated=False`` ledgers exactly as the paper's forked validators
produce pages that never enter the main chain.

This is the component a downstream user scripts against when they want the
whole system rather than one substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.consensus.engine import ConsensusEngine
from repro.consensus.faults import active
from repro.consensus.network import NetworkModel
from repro.consensus.rounds import RoundOutcome
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.errors import ConsensusError
from repro.ledger.apply import ApplyCode, AppliedTransaction, TransactionApplier
from repro.ledger.pages import LedgerChain, LedgerPage
from repro.ledger.state import LedgerState
from repro.ledger.transactions import Payment, Transaction
from repro.obs.manifest import RUN
from repro.obs.metrics import METRICS


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry of failed consensus rounds, with backoff and jitter.

    Backoff is expressed in *simulated* seconds: the node advances the
    engine's close clock while it waits, so retried rounds carry realistic
    close-time gaps (the paper reads payment timestamps off close times).
    """

    max_retries: int = 3
    base_backoff: float = 2.0
    multiplier: float = 2.0
    max_backoff: float = 60.0
    #: Fractional jitter: each backoff is scaled by 1 ± jitter.
    jitter: float = 0.25

    def backoff_seconds(self, attempt: int, rng: np.random.Generator) -> int:
        """Simulated seconds to wait before retry number ``attempt + 1``."""
        delay = min(self.max_backoff, self.base_backoff * self.multiplier ** attempt)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(1, int(round(delay)))


@dataclass
class ClosedLedger:
    """One sealed ledger: the page plus per-transaction apply outcomes.

    ``validated=False`` marks a degraded close: the page was sealed from a
    plurality position without reaching the full validation quorum, so it
    never enters the main chain's validated history.
    """

    page: LedgerPage
    applied: List[AppliedTransaction] = field(default_factory=list)
    validated: bool = True

    @property
    def success_count(self) -> int:
        return sum(1 for item in self.applied if item.succeeded)


def default_validators(count: int = 5) -> List[Validator]:
    """A healthy in-process validator set for single-node simulations."""
    names = [f"validator-{i}" for i in range(count)]
    unl = UNL.of(names)
    return [Validator(name, unl, active(availability=1.0)) for name in names]


class RippledNode:
    """The end-to-end server facade."""

    def __init__(
        self,
        state: Optional[LedgerState] = None,
        validators: Optional[Sequence[Validator]] = None,
        require_signatures: bool = True,
        network: Optional[NetworkModel] = None,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        allow_degraded: bool = False,
        degraded_quorum: float = 0.4,
        chaos: Optional[object] = None,
    ):
        self.state = state if state is not None else LedgerState()
        self.applier = TransactionApplier(
            self.state, require_signatures=require_signatures
        )
        roster = list(validators) if validators is not None else default_validators()
        self.consensus = ConsensusEngine(
            roster,
            network=network or NetworkModel(),
            seed=seed,
            keep_outcomes=True,
            chaos=chaos,
        )
        self.chain = LedgerChain.with_genesis()
        self.retry = retry if retry is not None else RetryPolicy()
        self.allow_degraded = allow_degraded
        self.degraded_quorum = degraded_quorum
        self.chaos = chaos
        #: Backoff jitter draws come from a dedicated generator so retries
        #: never perturb the consensus engine's random stream.
        self._retry_rng = np.random.default_rng(seed ^ 0x5EED)
        #: open-ledger pool: tx hash -> transaction awaiting consensus.
        self.pool: Dict[bytes, Transaction] = {}
        self.closed_ledgers: List[ClosedLedger] = []
        #: submissions rejected before reaching the pool, for diagnostics.
        self.rejected: List[AppliedTransaction] = []
        #: Fully validated page hashes, i.e. the node's view of the main
        #: chain — degraded closes never appear here.
        self.validated_hashes: List[bytes] = []
        # Resilience counters (also mirrored into the chaos injector).
        self.round_retries = 0
        self.degraded_closes = 0
        self.failed_closes = 0

    # Submission -------------------------------------------------------------------

    def submit(self, tx: Transaction) -> ApplyCode:
        """Precheck a transaction and queue it for the next close.

        Mirrors a server's submission path: ``tem``/``tef`` rejections never
        enter the pool; retryable and fundable transactions wait for
        consensus.
        """
        failure = self.applier._precheck(tx)
        if failure is not None and not failure.retryable and failure is not (
            ApplyCode.FUTURE_SEQUENCE
        ):
            if failure in (
                ApplyCode.MALFORMED,
                ApplyCode.BAD_SIGNATURE,
                ApplyCode.PAST_SEQUENCE,
            ):
                self.rejected.append(AppliedTransaction(tx, failure))
                return failure
        self.pool[tx.tx_hash] = tx
        return ApplyCode.SUCCESS

    @property
    def pool_size(self) -> int:
        return len(self.pool)

    # Consensus & close ---------------------------------------------------------------

    def close_ledger(self) -> Optional[ClosedLedger]:
        """Run consensus over the pool and seal the agreed set.

        A round that misses the validation quorum is retried under the
        node's :class:`RetryPolicy`, backing off in simulated time.  When
        retries are exhausted: with ``allow_degraded`` the node seals the
        plurality page anyway (``validated=False``) provided its agreement
        reached ``degraded_quorum``; otherwise returns None and the pool
        is retained for the next close.
        """
        pool_snapshot = dict(self.pool)

        def tx_supplier(_round, _rng):
            return frozenset(pool_snapshot.keys())

        outcome = self._consensus_with_retry(tx_supplier)
        if outcome.validated:
            agreed_set = outcome.validated_tx_set
            validated = True
        elif (
            self.allow_degraded
            and outcome.plurality_hash is not None
            and outcome.agreement >= self.degraded_quorum
        ):
            # Degraded close: seal the best-supported page off the reduced
            # quorum.  The page never enters the validated main chain —
            # the same observable the paper's forked validators produce.
            agreed_set = outcome.plurality_tx_set
            validated = False
            self.degraded_closes += 1
            METRICS.count("node.degraded_closes")
            RUN.count("degraded_closes")
            if self.chaos is not None:
                self.chaos.note_degraded_close()
        else:
            self.failed_closes += 1
            METRICS.count("node.failed_closes")
            RUN.count("failed_closes")
            if self.chaos is not None:
                self.chaos.note_failed_close()
            return None

        agreed = [
            (tx_hash, pool_snapshot[tx_hash])
            for tx_hash in agreed_set
            if tx_hash in pool_snapshot
        ]
        # Canonical application order: deterministic across all servers.
        agreed.sort(key=lambda item: item[0])

        applied: List[AppliedTransaction] = []
        recorded: List[Transaction] = []
        for pool_key, tx in agreed:
            # Signed transactions are immutable: their timestamp is the
            # close time of the page that seals them (exactly how the
            # paper's study derives the T feature from the public ledger).
            result = self.applier.apply(tx)
            applied.append(result)
            if result.code.applied_to_ledger:
                recorded.append(tx)
            self.pool.pop(pool_key, None)
        # Transactions the network agreed on but we never saw stay pooled
        # on other servers; transactions left in our pool retry next round.

        page = self.chain.seal(recorded, close_time=outcome.close_time)
        closed = ClosedLedger(page=page, applied=applied, validated=validated)
        self.closed_ledgers.append(closed)
        if validated:
            self.validated_hashes.append(outcome.validated_hash)
        return closed

    def _consensus_with_retry(self, tx_supplier) -> RoundOutcome:
        """Run rounds until one validates or the retry budget is spent.

        Returns the last outcome either way; the caller decides whether a
        non-validated outcome becomes a degraded close or a failed one.
        """
        attempts = self.retry.max_retries + 1
        outcome: RoundOutcome
        for attempt in range(attempts):
            report = self.consensus.run(1, tx_supplier=tx_supplier)
            outcome = report.outcomes[-1]
            if outcome.validated:
                return outcome
            if attempt + 1 < attempts:
                self.round_retries += 1
                METRICS.count("node.round_retries")
                RUN.count("round_retries")
                if self.chaos is not None:
                    self.chaos.note_retry()
                # Exponential backoff with jitter, in simulated time: the
                # close clock advances while the node waits to retry.
                self.consensus.close_time += self.retry.backoff_seconds(
                    attempt, self._retry_rng
                )
        return outcome

    def run(self, rounds: int) -> List[ClosedLedger]:
        """Close up to ``rounds`` ledgers; skipped rounds retry the pool."""
        if rounds <= 0:
            raise ConsensusError("rounds must be positive")
        closed = []
        for _ in range(rounds):
            ledger = self.close_ledger()
            if ledger is not None:
                closed.append(ledger)
        return closed

    # Introspection ----------------------------------------------------------------------

    def transaction_history(self) -> List[Transaction]:
        """Every transaction recorded in the chain, in order."""
        return [tx for _page, tx in self.chain.iter_transactions()]

    def apply_outcome_of(self, tx_hash: bytes) -> Optional[AppliedTransaction]:
        for ledger in self.closed_ledgers:
            for item in ledger.applied:
                if item.transaction.tx_hash == tx_hash:
                    return item
        return None
