"""A full simulated rippled node: submission, consensus, application, chain.

``RippledNode`` wires every substrate together the way a real server does:

1. clients **submit** signed transactions; the node runs the static and
   signature prechecks and queues survivors in the open-ledger pool;
2. each **consensus round** proposes the pool to the validator network;
   the agreed transaction set comes back from RPCA;
3. agreed transactions are **applied in canonical order** (sorted by hash,
   rippled's deterministic shuffle) against the ledger state — including
   ``tec`` failures, which claim their fee and their ledger slot;
4. the applied set is **sealed** into a new ledger page whose close time
   is the authoritative payment timestamp — the exact field the paper's
   de-anonymization study reads off the public ledger.

This is the component a downstream user scripts against when they want the
whole system rather than one substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.consensus.engine import ConsensusEngine
from repro.consensus.faults import active
from repro.consensus.network import NetworkModel
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.errors import ConsensusError
from repro.ledger.apply import ApplyCode, AppliedTransaction, TransactionApplier
from repro.ledger.pages import LedgerChain, LedgerPage
from repro.ledger.state import LedgerState
from repro.ledger.transactions import Payment, Transaction


@dataclass
class ClosedLedger:
    """One sealed ledger: the page plus per-transaction apply outcomes."""

    page: LedgerPage
    applied: List[AppliedTransaction] = field(default_factory=list)
    validated: bool = True

    @property
    def success_count(self) -> int:
        return sum(1 for item in self.applied if item.succeeded)


def default_validators(count: int = 5) -> List[Validator]:
    """A healthy in-process validator set for single-node simulations."""
    names = [f"validator-{i}" for i in range(count)]
    unl = UNL.of(names)
    return [Validator(name, unl, active(availability=1.0)) for name in names]


class RippledNode:
    """The end-to-end server facade."""

    def __init__(
        self,
        state: Optional[LedgerState] = None,
        validators: Optional[Sequence[Validator]] = None,
        require_signatures: bool = True,
        network: Optional[NetworkModel] = None,
        seed: int = 0,
    ):
        self.state = state if state is not None else LedgerState()
        self.applier = TransactionApplier(
            self.state, require_signatures=require_signatures
        )
        roster = list(validators) if validators is not None else default_validators()
        self.consensus = ConsensusEngine(
            roster,
            network=network or NetworkModel(),
            seed=seed,
            keep_outcomes=True,
        )
        self.chain = LedgerChain.with_genesis()
        #: open-ledger pool: tx hash -> transaction awaiting consensus.
        self.pool: Dict[bytes, Transaction] = {}
        self.closed_ledgers: List[ClosedLedger] = []
        #: submissions rejected before reaching the pool, for diagnostics.
        self.rejected: List[AppliedTransaction] = []

    # Submission -------------------------------------------------------------------

    def submit(self, tx: Transaction) -> ApplyCode:
        """Precheck a transaction and queue it for the next close.

        Mirrors a server's submission path: ``tem``/``tef`` rejections never
        enter the pool; retryable and fundable transactions wait for
        consensus.
        """
        failure = self.applier._precheck(tx)
        if failure is not None and not failure.retryable and failure is not (
            ApplyCode.FUTURE_SEQUENCE
        ):
            if failure in (
                ApplyCode.MALFORMED,
                ApplyCode.BAD_SIGNATURE,
                ApplyCode.PAST_SEQUENCE,
            ):
                self.rejected.append(AppliedTransaction(tx, failure))
                return failure
        self.pool[tx.tx_hash] = tx
        return ApplyCode.SUCCESS

    @property
    def pool_size(self) -> int:
        return len(self.pool)

    # Consensus & close ---------------------------------------------------------------

    def close_ledger(self) -> Optional[ClosedLedger]:
        """Run one consensus round over the pool and seal the agreed set.

        Returns the closed ledger, or None when the round failed to reach
        the validation quorum (the pool is retained for the next round).
        """
        pool_snapshot = dict(self.pool)

        def tx_supplier(_round, _rng):
            return frozenset(pool_snapshot.keys())

        report = self.consensus.run(1, tx_supplier=tx_supplier)
        outcome = report.outcomes[-1]
        if not outcome.validated:
            return None

        agreed = [
            (tx_hash, pool_snapshot[tx_hash])
            for tx_hash in outcome.validated_tx_set
            if tx_hash in pool_snapshot
        ]
        # Canonical application order: deterministic across all servers.
        agreed.sort(key=lambda item: item[0])

        applied: List[AppliedTransaction] = []
        recorded: List[Transaction] = []
        for pool_key, tx in agreed:
            # Signed transactions are immutable: their timestamp is the
            # close time of the page that seals them (exactly how the
            # paper's study derives the T feature from the public ledger).
            result = self.applier.apply(tx)
            applied.append(result)
            if result.code.applied_to_ledger:
                recorded.append(tx)
            self.pool.pop(pool_key, None)
        # Transactions the network agreed on but we never saw stay pooled
        # on other servers; transactions left in our pool retry next round.

        page = self.chain.seal(recorded, close_time=outcome.close_time)
        closed = ClosedLedger(page=page, applied=applied)
        self.closed_ledgers.append(closed)
        return closed

    def run(self, rounds: int) -> List[ClosedLedger]:
        """Close up to ``rounds`` ledgers; skipped rounds retry the pool."""
        if rounds <= 0:
            raise ConsensusError("rounds must be positive")
        closed = []
        for _ in range(rounds):
            ledger = self.close_ledger()
            if ledger is not None:
                closed.append(ledger)
        return closed

    # Introspection ----------------------------------------------------------------------

    def transaction_history(self) -> List[Transaction]:
        """Every transaction recorded in the chain, in order."""
        return [tx for _page, tx in self.chain.iter_transactions()]

    def apply_outcome_of(self, tx_hash: bytes) -> Optional[AppliedTransaction]:
        for ledger in self.closed_ledgers:
            for item in ledger.applied:
                if item.transaction.tx_hash == tx_hash:
                    return item
        return None
