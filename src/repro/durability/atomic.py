"""Atomic durable writes and sidecar manifests.

The invariant: a reader never observes a half-written file at the target
path.  ``atomic_write`` stages everything in a temp file *in the same
directory* (``os.replace`` is only atomic within a filesystem), flushes and
``fsync``\\ s it, then renames over the target in one step.  A crash — up to
and including ``kill -9`` — leaves either the old file or the new file,
never a hybrid; at worst a stale ``<name>.tmp.*`` sibling survives, and the
next successful write for the same target sweeps those up.

A sidecar manifest (``<path>.sha256``) extends the guarantee across
*downloads and copies*: it records the content hash, byte size, record
count, and a format tag, so :func:`verify_manifest` can prove the bytes on
disk are the bytes that were written — the check the paper's 500 GB
ad-hoc ledger download had to reinvent.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
from contextlib import contextmanager
from typing import IO, Iterator, Optional

from repro.errors import IntegrityError

#: Sidecar manifest suffix: ``ledger.jsonl.gz`` -> ``ledger.jsonl.gz.sha256``.
MANIFEST_SUFFIX = ".sha256"

#: Manifest schema tag; bump when the sidecar layout changes.
MANIFEST_VERSION = 1


def manifest_path(path: str) -> str:
    return f"{path}{MANIFEST_SUFFIX}"


def _sweep_stale_temps(path: str) -> None:
    """Remove leftovers of crashed writes targeting ``path`` (best effort)."""
    for stale in glob.glob(glob.escape(path) + ".tmp.*"):
        try:
            os.remove(stale)
        except OSError:
            pass


@contextmanager
def atomic_write(
    path: str,
    mode: str = "w",
    encoding: Optional[str] = None,
    manifest: bool = False,
    records: Optional[int] = None,
    fmt: Optional[str] = None,
) -> Iterator[IO]:
    """All-or-nothing write to ``path``; yields the staged file handle.

    ``mode`` is ``"w"`` (text, utf-8 unless ``encoding`` overrides) or
    ``"wb"``.  On a clean exit the staged bytes are fsynced and renamed
    over ``path``; on any exception the temp file is removed and the
    target is left exactly as it was.  With ``manifest=True`` a
    ``<path>.sha256`` sidecar is written after the rename (itself
    atomically), carrying the content hash plus the optional ``records``
    count and ``fmt`` tag.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write mode must be 'w' or 'wb', not {mode!r}")
    if mode == "w" and encoding is None:
        encoding = "utf-8"
    tmp_path = f"{path}.tmp.{os.getpid()}"
    handle = open(tmp_path, mode, encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    handle.close()
    os.replace(tmp_path, path)
    _sweep_stale_temps(path)
    if manifest:
        write_manifest(path, records=records, fmt=fmt)


def _hash_file(path: str) -> tuple:
    """(sha256 hex digest, byte size) of the file at ``path``."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def write_manifest(
    path: str, records: Optional[int] = None, fmt: Optional[str] = None
) -> dict:
    """Write the ``<path>.sha256`` sidecar for the current bytes on disk."""
    sha256, size = _hash_file(path)
    payload = {
        "manifest_version": MANIFEST_VERSION,
        "sha256": sha256,
        "bytes": size,
    }
    if records is not None:
        payload["records"] = int(records)
    if fmt is not None:
        payload["format"] = fmt
    with atomic_write(manifest_path(path)) as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
    return payload


def read_manifest(path: str) -> Optional[dict]:
    """The parsed sidecar for ``path``, or None when there is none.

    A sidecar that exists but cannot be parsed raises
    :class:`IntegrityError` — an unreadable manifest means *something*
    corrupted the pair, and silently skipping verification would defeat
    its purpose.
    """
    sidecar = manifest_path(path)
    if not os.path.exists(sidecar):
        return None
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise IntegrityError(f"unreadable manifest {sidecar}: {exc}") from None
    if not isinstance(payload, dict) or "sha256" not in payload:
        raise IntegrityError(f"malformed manifest {sidecar}")
    return payload


def verify_manifest(path: str, required: bool = False) -> Optional[dict]:
    """Check ``path`` against its sidecar manifest.

    Returns the manifest dict on success, ``None`` when no sidecar exists
    (unless ``required``).  Raises :class:`IntegrityError` when the hash
    or byte size disagrees with the file — the bytes were truncated or
    corrupted after they were sealed.
    """
    payload = read_manifest(path)
    if payload is None:
        if required:
            raise IntegrityError(f"missing manifest for {path}")
        return None
    sha256, size = _hash_file(path)
    expected_size = payload.get("bytes")
    if expected_size is not None and int(expected_size) != size:
        raise IntegrityError(
            f"{path}: size {size} != manifest {expected_size} — file "
            f"truncated or corrupted since write"
        )
    if sha256 != payload["sha256"]:
        raise IntegrityError(
            f"{path}: sha256 mismatch — file truncated or corrupted "
            f"since write (expected {payload['sha256'][:16]}…, "
            f"got {sha256[:16]}…)"
        )
    return payload
