"""Shard-result checkpoints: a killed ``--jobs N`` run resumes, not restarts.

Shard plans are deterministic (``repro.parallel.sharding``), so a shard's
partial is a pure function of the run key — (artifact name, seed, scale,
input fingerprint, shard plan).  The journal exploits that: every completed
shard's partial is pickled to a run directory named by the key's hash, each
entry sealed by an atomic write plus a sha256 sidecar.  A rerun with
``--resume`` loads whatever verifies and recomputes only the missing or
corrupt shards — bit-for-bit identical to a cold run, because nothing about
the computation changed, only who executed it when.

Layout, under ``$REPRO_RESUME_DIR`` (default ``.repro-resume``)::

    <root>/<key-hash>/
        meta.json            # the human-readable key, for debugging
        shard-00003.pkl      # pickled partial of shard 3
        shard-00003.pkl.sha256
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, List, Optional, Sequence

from repro.durability.atomic import atomic_write, verify_manifest
from repro.errors import IntegrityError
from repro.obs.metrics import METRICS

#: Environment override for where resume journals live.
RESUME_DIR_ENV = "REPRO_RESUME_DIR"

DEFAULT_RESUME_DIR = ".repro-resume"


def resume_root() -> str:
    return os.environ.get(RESUME_DIR_ENV, "") or DEFAULT_RESUME_DIR


def _shard_size(shard: Any) -> Optional[int]:
    try:
        return len(shard)
    except TypeError:
        return None


def plan_fingerprint(shards: Sequence[Any]) -> str:
    """A stable digest of the shard plan's shape (count + per-shard sizes).

    Shard payloads themselves are not hashed — they can be large and are
    already determined by (seed, scale, input, jobs); the shape is what
    distinguishes one deterministic plan from another.
    """
    shape = [len(shards)] + [_shard_size(shard) for shard in shards]
    return hashlib.sha256(json.dumps(shape).encode()).hexdigest()


class ResumeJournal:
    """One run directory of per-shard checkpoints, keyed by the run identity."""

    def __init__(self, key: dict, root: Optional[str] = None):
        self.key = dict(key)
        digest = hashlib.sha256(
            json.dumps(self.key, sort_keys=True).encode()
        ).hexdigest()[:20]
        self.directory = os.path.join(root or resume_root(), digest)

    @classmethod
    def for_run(
        cls,
        artifact: str,
        shards: Sequence[Any],
        seed: Optional[int] = None,
        scale: Optional[int] = None,
        payments: Optional[int] = None,
        archive: Optional[str] = None,
        root: Optional[str] = None,
    ) -> "ResumeJournal":
        key = {
            "artifact": artifact,
            "seed": seed,
            "scale": scale,
            "payments": payments,
            "archive": os.path.abspath(archive) if archive else None,
            "plan": plan_fingerprint(shards),
        }
        return cls(key, root=root)

    # Paths ------------------------------------------------------------------

    def _entry_path(self, index: int) -> str:
        return os.path.join(self.directory, f"shard-{index:05d}.pkl")

    def _ensure_directory(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        meta = os.path.join(self.directory, "meta.json")
        if not os.path.exists(meta):
            with atomic_write(meta) as handle:
                handle.write(json.dumps(self.key, indent=2, sort_keys=True) + "\n")

    # Entries ----------------------------------------------------------------

    def store(self, index: int, partial: Any) -> None:
        """Checkpoint one shard partial (atomic pickle + sha256 sidecar)."""
        self._ensure_directory()
        with atomic_write(
            self._entry_path(index), mode="wb", manifest=True,
            fmt="repro-shard/1",
        ) as handle:
            pickle.dump(partial, handle, protocol=pickle.HIGHEST_PROTOCOL)
        METRICS.count("resume.stored")

    def load(self, index: int) -> Any:
        """One verified shard partial, or None when absent/corrupt.

        Any failure — missing entry, hash mismatch, unpicklable bytes —
        degrades to ``None`` (recompute), never to an exception: a corrupt
        checkpoint must cost a shard recompute, not the run.
        """
        path = self._entry_path(index)
        if not os.path.exists(path):
            return None
        try:
            verify_manifest(path, required=True)
            with open(path, "rb") as handle:
                partial = pickle.load(handle)
        except (IntegrityError, OSError, EOFError, ValueError, AttributeError,
                ImportError, pickle.UnpicklingError):
            METRICS.count("resume.corrupt")
            for stale in (path, path + ".sha256"):
                try:
                    os.remove(stale)
                except OSError:
                    pass
            return None
        METRICS.count("resume.loaded")
        return partial

    def load_all(self, n_shards: int) -> List[Any]:
        """Verified partials for every shard index (None where missing)."""
        return [self.load(index) for index in range(n_shards)]
