"""Lenient-ingest bookkeeping: quarantine sidecars and summary stats.

Strict ingest turns the first bad line into a typed error; lenient ingest
keeps streaming, diverting each bad line — with the reason attached — to a
``<archive>.quarantine.jsonl`` sidecar so the damage is inspectable and
repairable after the run.  Tolerance is bounded: past a configurable
bad-line fraction the stream aborts, because an archive that is mostly
garbage should fail loudly, not produce a quietly wrong figure.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.durability.atomic import atomic_write
from repro.obs.metrics import METRICS

#: Default ceiling on the quarantined fraction of data lines.
DEFAULT_MAX_BAD_FRACTION = 0.01

#: Quarantine sidecar suffix: ``ledger.jsonl.gz.quarantine.jsonl``.
QUARANTINE_SUFFIX = ".quarantine.jsonl"


@dataclass
class IngestStats:
    """What one archive read actually saw.

    ``read`` counts records successfully yielded, ``quarantined`` the data
    lines diverted to the sidecar; ``reasons`` tallies quarantines by
    machine-readable reason (``parse``, ``schema:<field>``, …).
    """

    read: int = 0
    quarantined: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.read + self.quarantined

    @property
    def bad_fraction(self) -> float:
        return self.quarantined / self.total if self.total else 0.0

    def record_ok(self) -> None:
        self.read += 1

    def record_bad(self, reason: str) -> None:
        self.quarantined += 1
        self.reasons[reason] = self.reasons.get(reason, 0) + 1

    def mirror_to_metrics(self, name: str = "ingest") -> None:
        """Accumulate this read's tallies into :data:`repro.obs.metrics.METRICS`."""
        METRICS.count(f"{name}.records", self.read)
        if self.quarantined:
            METRICS.count(f"{name}.quarantined", self.quarantined)
            for reason, count in self.reasons.items():
                METRICS.count(f"{name}.quarantined.{reason}", count)

    def as_manifest_dict(self) -> Dict[str, object]:
        """The run-manifest ``ingest`` section for this read."""
        return {
            "read": self.read,
            "quarantined": self.quarantined,
            "reasons": dict(sorted(self.reasons.items())),
        }

    def summary(self) -> str:
        parts = [f"read {self.read}", f"quarantined {self.quarantined}"]
        if self.reasons:
            detail = ", ".join(
                f"{reason}={count}" for reason, count in sorted(self.reasons.items())
            )
            parts.append(f"({detail})")
        return " ".join(parts)


class QuarantineWriter:
    """Collects bad lines and flushes them to the sidecar atomically.

    Lines are buffered in memory and written once, on :meth:`close`, via
    :func:`atomic_write` — a crash mid-run leaves either the previous
    sidecar or the complete new one.  Each entry is one JSON object::

        {"line": 17, "reason": "schema:amount", "error": "...", "raw": "..."}

    When nothing was quarantined, a stale sidecar from an earlier run is
    removed so its presence always means "this archive had bad lines".
    """

    def __init__(self, archive_path: str, path: Optional[str] = None):
        self.path = path or f"{archive_path}{QUARANTINE_SUFFIX}"
        self._entries: list = []

    def divert(self, line_number: int, reason: str, error: str, raw: str) -> None:
        self._entries.append(
            {
                "line": line_number,
                "reason": reason,
                "error": error,
                "raw": raw.rstrip("\n")[:4096],
            }
        )

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        if not self._entries:
            try:
                os.remove(self.path)
            except OSError:
                pass
            return
        with atomic_write(self.path) as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
