"""Crash-safe, corruption-tolerant storage primitives.

The paper's pipeline starts from a 500 GB ad-hoc ledger download and three
2-week validation-stream captures; at that scale truncated files, corrupt
lines, and killed runs are the common case.  This package is the data
plane's answer, threaded through ingest, artifact output, and the parallel
engine:

* :func:`atomic_write` — all-or-nothing file replacement (temp file in the
  same directory, flush + fsync + ``os.replace``), optionally sealed with a
  sidecar manifest;
* :func:`write_manifest` / :func:`verify_manifest` — ``<path>.sha256``
  sidecars carrying the content hash, byte size, record count, and format
  tag, verified on read with a typed :class:`~repro.errors.IntegrityError`;
* :class:`IngestStats` / :class:`QuarantineWriter` — the lenient-ingest
  bookkeeping contract (read/quarantined counts and per-reason tallies,
  mirrored into :data:`repro.obs.metrics.METRICS`);
* :class:`ResumeJournal` — per-shard checkpoints for ``--resume``:
  completed shard partials survive a killed ``--jobs N`` run and are
  reloaded (hash-verified) instead of recomputed.
"""

from repro.durability.atomic import (
    MANIFEST_SUFFIX,
    atomic_write,
    manifest_path,
    read_manifest,
    verify_manifest,
    write_manifest,
)
from repro.durability.ingest import IngestStats, QuarantineWriter
from repro.durability.journal import ResumeJournal, resume_root
from repro.errors import IntegrityError

__all__ = [
    "MANIFEST_SUFFIX",
    "IngestStats",
    "IntegrityError",
    "QuarantineWriter",
    "ResumeJournal",
    "atomic_write",
    "manifest_path",
    "read_manifest",
    "resume_root",
    "verify_manifest",
    "write_manifest",
]
