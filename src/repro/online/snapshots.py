"""Sealed state snapshots: the fast-forward half of recovery.

A snapshot is the canonical JSON of one :class:`~repro.online.state.
OnlineState`, wrapped with its own digest and sealed by the durability
layer — atomic write plus a ``.sha256`` sidecar manifest, exactly like
every other artifact in the repo.  Recovery trusts a snapshot only when
*both* checks pass: the sidecar proves the bytes on disk are the bytes
written, and the embedded digest proves the state payload is the state
that was sealed.  Anything less — a stale temp from a crash mid-seal, a
body without its sidecar, a bit flip — is discarded, and recovery falls
back to the next-older snapshot, replaying a longer WAL tail instead.
"""

from __future__ import annotations

import glob
import json
import os
import re
import sys
from typing import List, Optional, Tuple

from repro.durability.atomic import atomic_write, verify_manifest
from repro.errors import IngestError, IntegrityError
from repro.obs.metrics import METRICS
from repro.online.state import OnlineState

#: Manifest format tag for sealed snapshots.
SNAPSHOT_FORMAT = "repro-online-snapshot/1"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{10})\.json$")


def snapshot_name(applied_seq: int) -> str:
    # applied_seq is -1 before any event; the genesis snapshot maps to 0000000000.
    return f"snapshot-{applied_seq + 1:010d}.json"


class SnapshotStore:
    """A directory of sealed snapshots with verified-newest-first reads."""

    def __init__(self, directory: str, keep: int = 3):
        if keep < 1:
            raise IngestError("snapshot store must keep at least one")
        self.directory = directory
        self.keep = keep
        os.makedirs(directory, exist_ok=True)

    def paths(self) -> List[str]:
        """Snapshot files, oldest first."""
        found = []
        for path in glob.glob(os.path.join(self.directory, "snapshot-*.json")):
            if _SNAPSHOT_RE.match(os.path.basename(path)):
                found.append(path)
        return sorted(found)

    def oldest_applied_seq(self) -> Optional[int]:
        """Frontier of the *oldest* retained snapshot (by filename).

        WAL pruning keys on this, not on the newest snapshot: the log
        must stay deep enough that recovery can fall back past a corrupt
        newest snapshot to any older retained one and still replay the
        gap.
        """
        paths = self.paths()
        if not paths:
            return None
        match = _SNAPSHOT_RE.match(os.path.basename(paths[0]))
        return int(match.group(1)) - 1

    def sweep(self) -> int:
        """Remove stale temp files a crash mid-seal left behind."""
        swept = 0
        for stale in glob.glob(os.path.join(self.directory, "*.tmp.*")):
            try:
                os.remove(stale)
                swept += 1
            except OSError:
                pass
        if swept:
            METRICS.count("online.snapshot.temps_swept", swept)
        return swept

    # Sealing -----------------------------------------------------------------

    def seal(self, state: OnlineState) -> str:
        """Write one verified snapshot of ``state``; prunes old ones."""
        payload = {
            "format": SNAPSHOT_FORMAT,
            "applied_seq": state.applied_seq,
            "digest": state.digest(),
            "state": state.payload(),
        }
        path = os.path.join(self.directory, snapshot_name(state.applied_seq))
        with atomic_write(path, manifest=True, fmt=SNAPSHOT_FORMAT) as handle:
            handle.write(
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        METRICS.count("online.snapshot.sealed")
        self._prune()
        return path

    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[: max(0, len(paths) - self.keep)]:
            for target in (stale, f"{stale}.sha256"):
                try:
                    os.remove(target)
                except OSError:
                    pass

    # Recovery ----------------------------------------------------------------

    def load(self, path: str) -> Tuple[OnlineState, int]:
        """One snapshot, fully verified; raises on any defect."""
        verify_manifest(path, required=True)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or payload.get("format") != (
            SNAPSHOT_FORMAT
        ):
            raise IngestError(f"{path}: not a {SNAPSHOT_FORMAT} snapshot")
        state = OnlineState.from_payload(payload["state"])
        if state.digest() != payload.get("digest"):
            raise IntegrityError(f"{path}: state digest mismatch")
        if state.applied_seq != int(payload.get("applied_seq", -2)):
            raise IntegrityError(f"{path}: applied_seq disagrees with state")
        return state, state.applied_seq

    def latest_verified(
        self, not_after: Optional[int] = None
    ) -> Optional[Tuple[OnlineState, int]]:
        """Newest snapshot that verifies, walking backwards past defects.

        ``not_after`` bounds the acceptable frontier: recovery may need a
        snapshot old enough for the WAL tail to cover the gap, so callers
        can reject snapshots newer than what the log can reach.  Corrupt
        or unverifiable snapshots are discarded with a counter
        (``online.snapshot.discarded``) and the walk continues.
        """
        for path in reversed(self.paths()):
            try:
                state, applied_seq = self.load(path)
            except (IntegrityError, IngestError, OSError, ValueError) as exc:
                METRICS.count("online.snapshot.discarded")
                print(
                    f"snapshots: discarding {os.path.basename(path)}: {exc}",
                    file=sys.stderr,
                )
                for target in (path, f"{path}.sha256"):
                    try:
                        os.remove(target)
                    except OSError:
                        pass
                continue
            if not_after is not None and applied_seq > not_after:
                continue
            return state, applied_seq
        return None
