"""The segmented write-ahead log: accepted means fsynced.

Layout, under ``<state-dir>/wal``::

    wal-0000000000.jsonl          # events seq 0..N-1, one JSON line each
    wal-0000000000.jsonl.sha256   # sidecar: segment is *sealed* (immutable)
    wal-0000001024.jsonl          # the active segment (no sidecar yet)

Segments are named by the first sequence number they contain.  An event
is **accepted** once its line is written *and fsynced* to the active
segment — only then may the source be acknowledged or the event applied
to state.  When a segment reaches the rotation threshold it is sealed:
fsynced, closed, and given a ``.sha256`` sidecar via the durability
layer's atomic manifest write.  Sealing happens *before* the next
segment opens, so at most one segment — the last — can ever lack a
verified sidecar after a crash.

Recovery walks segments in order: sealed segments must verify against
their sidecars (a mismatch means disk corruption, not a crash; the
segment and everything after it is discarded and recovery falls back to
an older snapshot); the trailing unsealed segment is read tolerantly —
a torn final line (the write ``kill -9`` interrupted) is dropped and the
file truncated back to the last complete line before appends resume.
Dropped torn bytes were never acknowledged, so no accepted event is
lost.
"""

from __future__ import annotations

import glob
import os
import re
import sys
from typing import List, Optional, Tuple

from repro.durability.atomic import (
    manifest_path,
    verify_manifest,
    write_manifest,
)
from repro.errors import IngestError, IntegrityError
from repro.obs.metrics import METRICS
from repro.online.events import IngestEvent, decode_event, encode_event

#: Manifest format tag for sealed WAL segments.
WAL_FORMAT = "repro-wal/1"

_SEGMENT_RE = re.compile(r"^wal-(\d{10})\.jsonl$")


def segment_name(first_seq: int) -> str:
    return f"wal-{first_seq:010d}.jsonl"


def _segment_first_seq(path: str) -> int:
    return int(_SEGMENT_RE.match(os.path.basename(path)).group(1))


class WriteAheadLog:
    """Append-only event log with size-bounded, sealed segments."""

    def __init__(
        self,
        directory: str,
        segment_events: int = 1024,
        fsync: bool = True,
    ):
        if segment_events <= 0:
            raise IngestError("WAL segment_events must be positive")
        self.directory = directory
        self.segment_events = segment_events
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        self._handle = None
        self._active_path: Optional[str] = None
        self._active_count = 0
        self._next_seq = 0

    # Introspection -----------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended event must carry."""
        return self._next_seq

    def segment_paths(self) -> List[str]:
        """All segment files, ordered by first sequence number."""
        found = []
        for path in glob.glob(os.path.join(self.directory, "wal-*.jsonl")):
            if _SEGMENT_RE.match(os.path.basename(path)):
                found.append(path)
        return sorted(found)

    def segment_count(self) -> int:
        return len(self.segment_paths())

    # Recovery ----------------------------------------------------------------

    def recover(self) -> List[IngestEvent]:
        """Replayable events from disk, in order; prepares for appends.

        Verifies every sealed segment against its sidecar; at the first
        segment that fails verification, decodes garbage, or leaves a
        sequence gap, that segment and everything after it are discarded
        (``online.wal.segments_discarded``) — replay then covers a
        shorter prefix and the caller's snapshot fallback covers the
        difference.  The trailing unsealed segment tolerates exactly one
        torn final line, which is truncated away
        (``online.wal.torn_tail_dropped``).  After recovery the log is
        positioned to append event ``next_seq``.
        """
        self._close_active()
        events: List[IngestEvent] = []
        paths = self.segment_paths()
        keep: List[str] = []
        discard_from: Optional[int] = None
        reason = ""
        for index, path in enumerate(paths):
            first_seq = _segment_first_seq(path)
            expect = self._tail_seq(events) if events else first_seq
            sealed = os.path.exists(manifest_path(path))
            last = index == len(paths) - 1
            try:
                if first_seq != expect:
                    raise IngestError(
                        f"segment starts at seq {first_seq}, expected {expect}"
                    )
                if sealed:
                    verify_manifest(path, required=True)
                segment_events, good_bytes, torn = self._read_segment(
                    path, expect_seq=expect
                )
            except (IntegrityError, IngestError, OSError) as exc:
                discard_from, reason = index, str(exc)
                break
            if torn:
                if sealed or not last:
                    # A torn line inside a sealed or non-final segment
                    # cannot be a crash artifact — treat as corruption.
                    discard_from = index
                    reason = "torn line inside a sealed/non-final segment"
                    break
                METRICS.count("online.wal.torn_tail_dropped")
                with open(path, "rb+") as handle:
                    handle.truncate(good_bytes)
            events.extend(segment_events)
            keep.append(path)
        if discard_from is not None:
            discarded = paths[discard_from:]
            METRICS.count("online.wal.segments_discarded", len(discarded))
            print(
                f"wal: discarding {len(discarded)} segment(s) from "
                f"{os.path.basename(paths[discard_from])}: {reason}",
                file=sys.stderr,
            )
            for stale in discarded:
                self._remove_segment(stale)
        if events:
            self._next_seq = self._tail_seq(events)
        elif keep:
            # The only kept segment was truncated to nothing (torn first
            # line): the next append continues at its declared first seq.
            self._next_seq = _segment_first_seq(keep[-1])
        # Reopen the trailing unsealed segment for append, so post-crash
        # events continue the same segment the crash interrupted.
        if keep and not os.path.exists(manifest_path(keep[-1])):
            self._active_path = keep[-1]
            self._active_count = self._count_lines(keep[-1])
            self._handle = open(keep[-1], "ab")
        return events

    def start_at(self, seq: int) -> None:
        """Advance ``next_seq`` to ``seq`` (resume past a pruned prefix).

        Only meaningful when the WAL holds nothing newer: a snapshot may
        cover every event the (fully pruned) log ever held, in which case
        appends must continue from the snapshot's frontier, not from 0.
        """
        if seq > self._next_seq:
            if self._handle is not None:
                raise IngestError("cannot skip ahead past an active segment")
            self._next_seq = seq

    def reset_to(self, seq: int) -> None:
        """Drop the whole log and resume appends at ``seq``.

        Only legal when a verified snapshot covers at least through
        ``seq - 1`` — every surviving segment is then redundant with the
        snapshot and recovery never needs to replay it.
        """
        self._close_active()
        removed = 0
        for path in self.segment_paths():
            self._remove_segment(path)
            removed += 1
        if removed:
            METRICS.count("online.wal.resets")
        self._next_seq = seq

    @staticmethod
    def _tail_seq(events: List[IngestEvent]) -> int:
        return events[-1].seq + 1 if events else 0

    def _read_segment(
        self, path: str, expect_seq: int
    ) -> Tuple[List[IngestEvent], int, bool]:
        """(events, clean-byte-length, torn?) for one segment file."""
        events: List[IngestEvent] = []
        good_bytes = 0
        torn = False
        with open(path, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    torn = True
                    break
                try:
                    event = decode_event(raw.decode("utf-8").strip())
                except (IngestError, UnicodeDecodeError):
                    torn = True
                    break
                if event.seq != expect_seq:
                    raise IngestError(
                        f"WAL segment {os.path.basename(path)}: expected "
                        f"seq {expect_seq}, found {event.seq}"
                    )
                events.append(event)
                expect_seq += 1
                good_bytes += len(raw)
        return events, good_bytes, torn

    @staticmethod
    def _count_lines(path: str) -> int:
        with open(path, "rb") as handle:
            return sum(1 for _ in handle)

    def _remove_segment(self, path: str) -> None:
        for stale in (path, manifest_path(path)):
            try:
                os.remove(stale)
            except OSError:
                pass

    # Appends -----------------------------------------------------------------

    def append(self, event: IngestEvent) -> None:
        """Durably log one event; returns only once it is accepted."""
        if event.seq != self._next_seq:
            raise IngestError(
                f"WAL append out of order: expected seq {self._next_seq}, "
                f"got {event.seq}"
            )
        if self._handle is None:
            self._open_segment(event.seq)
        self._handle.write((encode_event(event) + "\n").encode("utf-8"))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._active_count += 1
        self._next_seq = event.seq + 1
        METRICS.count("online.wal.appended")
        if self._active_count >= self.segment_events:
            self.seal_active()

    def _open_segment(self, first_seq: int) -> None:
        self._active_path = os.path.join(
            self.directory, segment_name(first_seq)
        )
        self._active_count = 0
        self._handle = open(self._active_path, "ab")

    def seal_active(self) -> None:
        """Seal the active segment (fsync + sha256 sidecar), if any."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        write_manifest(
            self._active_path, records=self._active_count, fmt=WAL_FORMAT
        )
        METRICS.count("online.wal.segments_sealed")
        self._active_path = None
        self._active_count = 0

    def _close_active(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._active_path = None
        self._active_count = 0

    def close(self) -> None:
        """Release the active file handle without sealing (crash-like)."""
        self._close_active()

    # Pruning -----------------------------------------------------------------

    def prune_through(self, seq: int) -> int:
        """Remove sealed segments fully covered by a snapshot at ``seq``.

        A segment is removable when every event it contains has sequence
        number ``<= seq`` — i.e. the *next* segment starts at or below
        ``seq + 1``.  The active segment is never pruned.
        """
        paths = self.segment_paths()
        removed = 0
        for index, path in enumerate(paths):
            if path == self._active_path:
                break
            if not os.path.exists(manifest_path(path)):
                break
            if index + 1 < len(paths):
                next_first = _segment_first_seq(paths[index + 1])
            else:
                next_first = self._next_seq
            if next_first <= seq + 1:
                self._remove_segment(path)
                removed += 1
            else:
                break
        if removed:
            METRICS.count("online.wal.segments_pruned", removed)
        return removed
