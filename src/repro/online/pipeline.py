"""The ingest pipeline: source → WAL → state, with snapshots and drain.

The order of operations is the whole durability story:

1. pull the next event from the source (a bounded queue fed by a live
   :class:`~repro.stream.server.StreamServer`, or a replayed archive);
2. **append it to the WAL and fsync** — the event is now *accepted*;
3. apply it to :class:`~repro.online.state.OnlineState` — a poison body
   is diverted to the quarantine sidecar instead (reason attached, state
   counters advanced), deterministically, so replay reaches the same
   state;
4. every ``snapshot_every`` events, seal a snapshot and prune WAL
   segments the snapshot covers; every ``status_every`` events, refresh
   the ``status.json`` the ``live_status`` serve op reads.

Recovery inverts it: sweep stale temps, recover the WAL (discarding a
torn tail), pick the newest *verified* snapshot the WAL tail can reach,
and replay forward.  A ``kill -9`` between any two steps lands in a
state this loop reconstructs exactly — the crash drill's contract.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.analysis.archive import ARCHIVE_VERSION
from repro.durability.atomic import atomic_write
from repro.durability.ingest import QuarantineWriter
from repro.errors import AnalysisError, IngestError
from repro.obs.metrics import METRICS
from repro.online.events import (
    KIND_PAYMENT,
    IngestEvent,
    PoisonEventError,
)
from repro.online.snapshots import SnapshotStore
from repro.online.state import ForkWatch, OnlineState
from repro.online.wal import WriteAheadLog

#: Name of the status file inside the state directory.
STATUS_NAME = "status.json"

#: Name of the poison-event quarantine sidecar inside the state directory.
QUARANTINE_NAME = "quarantine.jsonl"


@dataclass(frozen=True)
class IngestConfig:
    """Tunables of one ingest deployment (all paths under ``state_dir``)."""

    state_dir: str
    #: Events between sealed snapshots (0 disables periodic snapshots).
    snapshot_every: int = 1000
    #: Events per WAL segment before it is sealed and a new one opens.
    wal_segment_events: int = 512
    #: Verified snapshots retained (older ones are pruned).
    keep_snapshots: int = 3
    #: Bounded ingest queue depth for live sources.
    queue_size: int = 1024
    #: Events between status.json refreshes (0 disables).
    status_every: int = 200
    #: fsync every accepted event (tests may disable for speed).
    fsync: bool = True
    #: Per-view quorum for the fork watch.
    fork_quorum: float = 0.80

    def path(self, name: str) -> str:
        return os.path.join(self.state_dir, name)


class BoundedEventQueue:
    """The backpressure boundary between a live source and the pipeline.

    Producers (stream subscribers) block in :meth:`put` when the
    pipeline falls behind; every blocking put is counted
    (``online.backpressure.waits``) so lag is observable, not silent.
    The queue is closed with a sentinel; iteration ends after it.
    """

    _SENTINEL = object()

    def __init__(self, maxsize: int = 1024):
        self._queue: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self.puts = 0
        self.waits = 0

    def put(self, event: IngestEvent) -> None:
        self.puts += 1
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.waits += 1
            METRICS.count("online.backpressure.waits")
            self._queue.put(event)

    def depth(self) -> int:
        return self._queue.qsize()

    def close(self) -> None:
        self._queue.put(self._SENTINEL)

    def __iter__(self) -> Iterator[IngestEvent]:
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                return
            yield item


def archive_event_source(
    path: str, start_seq: int = 0
) -> Iterator[IngestEvent]:
    """Replay an archive as payment events, seq = data-line ordinal.

    Reads raw lines (not :func:`~repro.analysis.archive.iter_archive`):
    the online pipeline must *accept* malformed lines into the WAL and
    quarantine them at apply time, so a poison line becomes an event
    whose body carries the parse failure instead of killing the tail.
    Resume is a skip: events below ``start_seq`` are already in the WAL
    of the resuming process and must not be re-acknowledged.
    """
    import gzip

    if not os.path.exists(path):
        raise AnalysisError(f"archive not found: {path}")
    if path.endswith(".gz"):
        handle = gzip.open(path, "rt", encoding="utf-8", errors="replace")
    else:
        handle = open(path, "r", encoding="utf-8", errors="replace")
    with handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except ValueError:
            raise AnalysisError(f"archive {path} has no valid header") from None
        if not isinstance(header, dict) or header.get("version") != (
            ARCHIVE_VERSION
        ):
            raise AnalysisError(f"archive {path}: unsupported version")
        seq = 0
        for line in handle:
            if not line.strip():
                continue
            if seq >= start_seq:
                try:
                    body = json.loads(line)
                    if not isinstance(body, dict):
                        body = {"parse_error": "not a JSON object"}
                except ValueError as exc:
                    body = {"parse_error": str(exc)}
                yield IngestEvent(seq=seq, kind=KIND_PAYMENT, body=body)
            seq += 1


class _Quarantine:
    """The poison-event sidecar: durability-layer writer + preload/dedupe.

    Routes entries through the existing
    :class:`repro.durability.ingest.QuarantineWriter` (atomic rewrite on
    every flush), after preloading whatever an earlier incarnation wrote
    — flushes survive restarts — and deduplicating by event sequence,
    because WAL replay re-quarantines the same poison events it already
    diverted before the crash.
    """

    def __init__(self, path: str):
        self.writer = QuarantineWriter("", path=path)
        self._seen = set()
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        if not line.strip():
                            continue
                        entry = json.loads(line)
                        self.writer._entries.append(entry)
                        self._seen.add(int(entry.get("line", -1)))
            except (OSError, ValueError, TypeError):
                # An unreadable sidecar is diagnostic loss, not state
                # loss: counters in OnlineState remain exact.
                METRICS.count("online.quarantine.sidecar_reset")
                self.writer._entries = []
                self._seen = set()

    def divert(self, event: IngestEvent, reason: str, error: str) -> None:
        if event.seq in self._seen:
            return
        self._seen.add(event.seq)
        self.writer.divert(
            event.seq, reason, error,
            json.dumps(event.body, sort_keys=True)[:4096],
        )

    def flush(self) -> None:
        if len(self.writer):
            self.writer.close()


class IngestPipeline:
    """One recover→apply→snapshot loop over an event source."""

    def __init__(
        self,
        config: IngestConfig,
        fork_watch: Optional[ForkWatch] = None,
    ):
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        METRICS.enable()
        self.wal = WriteAheadLog(
            config.path("wal"),
            segment_events=config.wal_segment_events,
            fsync=config.fsync,
        )
        self.snapshots = SnapshotStore(
            config.path("snapshots"), keep=config.keep_snapshots
        )
        self._fork_watch_template = fork_watch
        self.state = OnlineState(
            fork_watch=fork_watch if fork_watch is not None else ForkWatch(
                quorum=config.fork_quorum
            )
        )
        self.quarantine = _Quarantine(config.path(QUARANTINE_NAME))
        self.stop_requested = threading.Event()
        self.heartbeat = time.monotonic()
        self.idle = True
        self.restarts = 0
        self.replayed = 0
        self._since_snapshot = 0
        self._since_status = 0
        self._last_snapshot_seq = -1

    # Recovery ----------------------------------------------------------------

    def recover(self) -> int:
        """Rebuild state from newest verified snapshot + WAL tail replay.

        Returns the number of events replayed from the WAL.  Raises
        :class:`IngestError` when the durable record is unrecoverable —
        the WAL starts past every verified snapshot's frontier, so
        accepted events would be silently skipped.
        """
        self.snapshots.sweep()
        events = self.wal.recover()
        first_replayable = events[0].seq if events else None
        found = self.snapshots.latest_verified()
        if found is not None:
            state, applied_seq = found
            if first_replayable is not None and (
                applied_seq < first_replayable - 1
            ):
                raise IngestError(
                    f"unrecoverable state dir {self.config.state_dir}: WAL "
                    f"starts at seq {first_replayable} but the newest "
                    f"verified snapshot covers only through {applied_seq}"
                )
            if self._fork_watch_template is not None and not (
                state.fork_watch.views
            ):
                # A roster configured at startup survives a restart even
                # when the recovered snapshot predates any validation.
                state.fork_watch = self._fork_watch_template
            self.state = state
            self._last_snapshot_seq = applied_seq
        elif first_replayable not in (None, 0):
            raise IngestError(
                f"unrecoverable state dir {self.config.state_dir}: WAL "
                f"starts at seq {first_replayable} with no verified snapshot"
            )
        replayed = 0
        for event in events:
            if event.seq <= self.state.applied_seq:
                continue
            self._apply(event)
            replayed += 1
        if self.wal.next_seq < self.state.applied_seq + 1:
            # The snapshot outruns everything the WAL still holds (its
            # covered segments were pruned or discarded): drop the stale
            # remainder and continue from the snapshot frontier.
            self.wal.reset_to(self.state.applied_seq + 1)
        self.replayed = replayed
        if replayed:
            METRICS.count("online.replayed", replayed)
        self.write_status(phase="recovered")
        return replayed

    # The loop ----------------------------------------------------------------

    def _apply(self, event: IngestEvent) -> None:
        """Fold one accepted event into state; poison goes to quarantine."""
        try:
            self.state.absorb(event)
        except PoisonEventError as exc:
            self.state.note_quarantined(event, exc.reason)
            self.quarantine.divert(event, exc.reason, str(exc))
            METRICS.count("online.quarantined")
            METRICS.count(f"online.quarantined.{exc.reason}")
        else:
            METRICS.count("online.absorbed")

    def run(self, source: Iterable[IngestEvent]) -> str:
        """Ingest until the source ends or stop is requested; then drain.

        Returns the final state digest (after the drain snapshot).
        """
        iterator = iter(source)
        while not self.stop_requested.is_set():
            self.idle = True
            try:
                event = next(iterator)
            except StopIteration:
                break
            self.idle = False
            self.heartbeat = time.monotonic()
            if event.seq != self.wal.next_seq:
                raise IngestError(
                    f"source is out of sync: produced seq {event.seq}, "
                    f"pipeline expects {self.wal.next_seq}"
                )
            self.wal.append(event)
            self._apply(event)
            self.heartbeat = time.monotonic()
            self._since_snapshot += 1
            self._since_status += 1
            if (
                self.config.snapshot_every
                and self._since_snapshot >= self.config.snapshot_every
            ):
                self.seal_snapshot()
            if (
                self.config.status_every
                and self._since_status >= self.config.status_every
            ):
                self.write_status(phase="running")
        return self.drain()

    def seal_snapshot(self) -> None:
        """Seal a snapshot, prune covered WAL segments, flush sidecars."""
        self.snapshots.seal(self.state)
        self._last_snapshot_seq = self.state.applied_seq
        self._prune_wal()
        self.quarantine.flush()
        self._since_snapshot = 0
        self.write_status(phase="running")

    def _prune_wal(self) -> None:
        # Prune only through the *oldest* retained snapshot: the WAL must
        # stay deep enough to replay forward from any snapshot recovery
        # might fall back to, not just the newest.
        oldest = self.snapshots.oldest_applied_seq()
        if oldest is not None:
            self.wal.prune_through(oldest)

    def drain(self) -> str:
        """Graceful shutdown: flush WAL, seal a final snapshot, status."""
        self.wal.seal_active()
        if self.state.applied_seq > self._last_snapshot_seq or not (
            self.snapshots.paths()
        ):
            self.snapshots.seal(self.state)
            self._last_snapshot_seq = self.state.applied_seq
        self._prune_wal()
        self.quarantine.flush()
        digest = self.state.digest()
        self.write_status(phase="drained", digest=digest)
        METRICS.count("online.drains")
        return digest

    def request_stop(self) -> None:
        """Ask the loop to drain after the event in flight (signal-safe)."""
        self.stop_requested.set()

    # Status ------------------------------------------------------------------

    def write_status(
        self, phase: str, digest: Optional[str] = None
    ) -> None:
        """Refresh ``status.json`` (atomic; volatile wall-clock included)."""
        counters = METRICS.counters
        payload = {
            "phase": phase,
            "pid": os.getpid(),
            "applied_seq": self.state.applied_seq,
            "events": self.state.events,
            "payments": self.state.payments,
            "validations": self.state.validations,
            "quarantined": self.state.quarantined_total,
            "forked_sequences": list(self.state.fork_watch.forked),
            "wal_segments": self.wal.segment_count(),
            "wal_next_seq": self.wal.next_seq,
            "last_snapshot_seq": self._last_snapshot_seq,
            "replayed": self.replayed,
            "restarts": self.restarts,
            "backpressure_waits": counters.get(
                "online.backpressure.waits", 0
            ),
            "updated_at": time.time(),
        }
        if digest is not None:
            payload["digest"] = digest
        with atomic_write(self.config.path(STATUS_NAME)) as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._since_status = 0


def read_status(state_dir: str) -> dict:
    """The last status.json an ingest process wrote under ``state_dir``."""
    path = os.path.join(state_dir, STATUS_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise IngestError(f"no readable ingest status at {path}: {exc}") from None
    if not isinstance(payload, dict):
        raise IngestError(f"malformed ingest status at {path}")
    return payload
