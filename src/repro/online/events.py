"""Typed events flowing through the online ingest pipeline.

Two kinds of event exist, mirroring the two streams the paper's authors
tapped: **payment** events (one archive-format payment payload, the
⟨S, A, T, C, D⟩ + path fields of :mod:`repro.analysis.archive`) and
**validation** events (one signature observed on the validation stream,
the fields of :class:`repro.stream.events.StreamEvent`).

Every event carries a monotonically increasing sequence number assigned
at ingest; the WAL stores events as one JSON line each, so the encoding
here *is* the on-disk log format — deterministic (sorted keys, compact
separators) so identical event streams produce identical WAL bytes.

A *poison* event is one whose body fails schema validation.  Poison is
detected at apply time, after the event is already durable in the WAL:
the pipeline quarantines it (reason attached) instead of absorbing it,
and replay reproduces the same quarantine decision — a poison event can
therefore never fork recovered state from live state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict

from repro.analysis.archive import validate_payload
from repro.errors import IngestError
from repro.stream.events import StreamEvent

#: Event schema tag; bump when the WAL line layout changes.
EVENT_VERSION = 1

KIND_PAYMENT = "payment"
KIND_VALIDATION = "validation"
EVENT_KINDS = (KIND_PAYMENT, KIND_VALIDATION)


class PoisonEventError(IngestError):
    """An event body failed schema validation at apply time.

    ``reason`` is the machine-readable tag quarantine sidecars and
    metrics key on (``schema:amount``, ``event:kind``, …).
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class IngestEvent:
    """One accepted event: sequence number, kind, and raw body."""

    seq: int
    kind: str
    body: dict


def payment_event(seq: int, payload: dict) -> IngestEvent:
    """Wrap one archive-format payment payload (unvalidated)."""
    return IngestEvent(seq=seq, kind=KIND_PAYMENT, body=payload)


def validation_event(seq: int, event: StreamEvent) -> IngestEvent:
    """Wrap one validation-stream message."""
    return IngestEvent(
        seq=seq,
        kind=KIND_VALIDATION,
        body={
            "validator": event.validation.validator,
            "sequence": event.validation.sequence,
            "page_hash": event.validation.page_hash.hex(),
            "sign_time": event.validation.sign_time,
            "received_at": event.received_at,
            "network_id": event.validation.network_id,
        },
    )


def encode_event(event: IngestEvent) -> str:
    """One deterministic WAL line (no trailing newline)."""
    return json.dumps(
        {"v": EVENT_VERSION, "seq": event.seq, "kind": event.kind,
         "body": event.body},
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_event(line: str) -> IngestEvent:
    """Parse one WAL line back into an event.

    Raises :class:`IngestError` on anything malformed — the WAL reader
    decides whether that means a torn tail (tolerated) or corruption in
    a sealed segment (the segment is discarded).
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise IngestError(f"WAL line is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise IngestError("WAL line is not a JSON object")
    if payload.get("v") != EVENT_VERSION:
        raise IngestError(f"unsupported event version {payload.get('v')!r}")
    kind = payload.get("kind")
    if kind not in EVENT_KINDS:
        raise IngestError(f"unknown event kind {kind!r}")
    seq = payload.get("seq")
    body = payload.get("body")
    if not isinstance(seq, int) or seq < 0 or not isinstance(body, dict):
        raise IngestError("WAL line has a malformed seq/body")
    return IngestEvent(seq=seq, kind=kind, body=body)


#: Required validation-event body fields and their types.
_VALIDATION_FIELDS: Dict[str, type] = {
    "validator": str,
    "sequence": int,
    "page_hash": str,
    "sign_time": int,
    "received_at": int,
    "network_id": int,
}


def validate_event_body(event: IngestEvent) -> None:
    """Schema-check an event body; raises :class:`PoisonEventError`.

    Payment bodies reuse the archive schema check
    (:func:`repro.analysis.archive.validate_payload`) verbatim, so the
    online pipeline rejects exactly the lines batch ingest would
    quarantine.
    """
    if event.kind == KIND_PAYMENT:
        if "parse_error" in event.body:
            # The archive source accepted an unparseable line into the
            # WAL; the parse failure travels as the event body.
            raise PoisonEventError(
                f"payment event seq {event.seq}: "
                f"{event.body['parse_error']}",
                reason="parse",
            )
        reason = validate_payload(event.body)
        if reason is not None:
            raise PoisonEventError(
                f"payment event seq {event.seq}: {reason}", reason=reason
            )
        return
    for field, expected in _VALIDATION_FIELDS.items():
        value = event.body.get(field)
        # bool is an int subclass; a boolean sequence number is garbage.
        if not isinstance(value, expected) or isinstance(value, bool):
            raise PoisonEventError(
                f"validation event seq {event.seq}: bad field {field!r}",
                reason=f"event:{field}",
            )
    try:
        bytes.fromhex(event.body["page_hash"])
    except ValueError:
        raise PoisonEventError(
            f"validation event seq {event.seq}: page_hash is not hex",
            reason="event:page_hash",
        ) from None
