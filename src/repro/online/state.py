"""Incremental online state: the live de-anonymizer and health counters.

``OnlineState`` is the materialized view the ingest pipeline maintains —
everything the batch artifacts compute over a frozen archive, kept
current per event:

* **fingerprint indexes** — one :class:`OnlineFingerprintIndex` per
  Fig. 3 feature list.  Each absorbs a delivered payment in O(1)
  amortized (a handful of dict updates) and maintains the number of
  *unique* fingerprints directly, so information gain is a division at
  read time.  Bucketing reuses the exact scalar arithmetic of the batch
  path (:mod:`repro.core.resolution` half-up rounding over Table I
  exponents), so the online identified-counts match
  :meth:`repro.core.deanonymizer.Deanonymizer.figure3` exactly;
* **delivery counters** — Table II-shaped submitted/delivered tallies
  per payment category (cross- vs single-currency), watching delivery
  health as a running rate rather than a batch replay;
* a **fork watch** — per-view validation bookkeeping over the
  validation stream (the incremental form of
  :func:`repro.consensus.forks.view_validated_pages`), flagging every
  sequence at which conflicting pages view-validated.

State is a pure fold over the accepted-event sequence: ``absorb`` is
deterministic, serialization is canonical JSON, and :meth:`digest` is
the sha256 of that canonical form — the bit-identity the crash drill
compares across killed and uninterrupted runs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.consensus.unl import UNL
from repro.core.resolution import (
    FIGURE3_FEATURE_LISTS,
    AmountResolution,
    FeatureList,
    TimeResolution,
    granularity_exponent,
    half_up,
)
from repro.errors import IngestError
from repro.ledger.currency import Currency
from repro.obs.metrics import METRICS
from repro.online.events import (
    KIND_PAYMENT,
    KIND_VALIDATION,
    IngestEvent,
    validate_event_body,
)

#: Snapshot/state schema tag; bump when the serialized layout changes.
STATE_VERSION = 1


def amount_bucket(amount: float, currency: str, resolution: AmountResolution) -> int:
    """The Table I bucket id of one amount — scalar twin of
    :func:`repro.core.resolution.round_amounts_vector`.

    Uses the same float64 operations in the same order (power, multiply,
    half-up) so scalar and vectorized bucketing agree bit for bit.
    """
    exponent = granularity_exponent(Currency(currency), resolution)
    scale = float(np.power(10.0, -np.float64(exponent)))
    return int(half_up(np.float64(amount) * scale))


def _absolute_amount_key(bucket: int, exponent: int) -> str:
    """Currency-blind amount key: ``bucket * 10^exponent`` normalized.

    The batch path re-expresses currency-scaled buckets in absolute
    value terms (quantized at the dataset's finest exponent); two rows
    collide there iff ``bucket_i * 10^(exp_i)`` are equal as reals.
    Stripping trailing zeros into the exponent gives a canonical form
    with exactly that equality — independent of any dataset-wide
    "finest" exponent, which an online index cannot know in advance.
    """
    if bucket == 0:
        return "0e0"
    while bucket % 10 == 0:
        bucket //= 10
        exponent += 1
    return f"{bucket}e{exponent}"


def fingerprint_key(
    feature_list: FeatureList,
    amount: float,
    timestamp: int,
    currency: str,
    destination: str,
) -> str:
    """The canonical fingerprint of one payment under ``feature_list``.

    Components are joined with ``|`` in a fixed order; dropped features
    contribute nothing.  Keys are compared only for equality, so any
    injective encoding works — this one is also stable across runs,
    which the snapshot digest requires.
    """
    parts: List[str] = []
    if feature_list.amount is not AmountResolution.NONE:
        exponent = granularity_exponent(
            Currency(currency), feature_list.amount
        )
        bucket = amount_bucket(amount, currency, feature_list.amount)
        if feature_list.use_currency:
            parts.append(f"a{bucket}")
        else:
            parts.append("A" + _absolute_amount_key(bucket, exponent))
    if feature_list.time is not TimeResolution.NONE:
        if timestamp < 0:
            raise IngestError("pre-epoch timestamp in fingerprint")
        bucket_seconds = feature_list.time.bucket_seconds()
        parts.append(f"t{(timestamp // bucket_seconds) * bucket_seconds}")
    if feature_list.use_currency:
        parts.append(f"c{currency}")
    if feature_list.use_destination:
        parts.append(f"d{destination}")
    return "|".join(parts)


class OnlineFingerprintIndex:
    """Fingerprint multiset for one feature list, with a live unique count.

    ``counts`` maps fingerprint key -> multiplicity; ``unique`` tracks
    how many keys currently have multiplicity exactly one — which *is*
    the paper's identified-payment count, maintained incrementally:
    a key moving 0→1 gains a unique payment, 1→2 loses one, and further
    repeats change nothing.
    """

    def __init__(
        self,
        feature_list: FeatureList,
        counts: Optional[Dict[str, int]] = None,
        unique: int = 0,
    ):
        self.feature_list = feature_list
        self.counts: Dict[str, int] = counts if counts is not None else {}
        self.unique = unique

    def absorb(
        self, amount: float, timestamp: int, currency: str, destination: str
    ) -> str:
        key = fingerprint_key(
            self.feature_list, amount, timestamp, currency, destination
        )
        count = self.counts.get(key, 0) + 1
        self.counts[key] = count
        if count == 1:
            self.unique += 1
        elif count == 2:
            self.unique -= 1
        return key

    def information_gain(self, total: int) -> float:
        """Percentage of payments with a unique fingerprint (Fig. 3)."""
        return 100.0 * self.unique / total if total else 0.0

    def payload(self) -> dict:
        return {
            "label": self.feature_list.label(),
            "counts": self.counts,
            "unique": self.unique,
        }

    @classmethod
    def from_payload(
        cls, feature_list: FeatureList, payload: dict
    ) -> "OnlineFingerprintIndex":
        return cls(
            feature_list,
            counts={str(k): int(v) for k, v in payload["counts"].items()},
            unique=int(payload["unique"]),
        )


class ForkWatch:
    """Incremental per-view fork detection over the validation stream.

    Holds each main-net validator's UNL and the signer sets observed per
    (sequence, page).  After absorbing a validation it re-evaluates only
    the touched sequence: when two or more pages have reached a view
    quorum there, the sequence is recorded as forked — the same
    condition :func:`repro.consensus.forks.find_forks` finds in batch.
    """

    def __init__(
        self,
        views: Optional[Dict[str, Tuple[str, ...]]] = None,
        quorum: float = 0.80,
        signers: Optional[Dict[int, Dict[str, List[str]]]] = None,
        forked: Optional[List[int]] = None,
    ):
        #: validator name -> sorted UNL member names (main net only).
        self.views: Dict[str, Tuple[str, ...]] = views or {}
        self.quorum = quorum
        #: sequence -> page hex -> sorted signer names.
        self.signers: Dict[int, Dict[str, List[str]]] = signers or {}
        self.forked: List[int] = forked or []
        self._unls: Dict[str, UNL] = {}

    @classmethod
    def from_validators(cls, validators, quorum: float = 0.80) -> "ForkWatch":
        views = {
            v.name: tuple(sorted(v.unl.members))
            for v in validators
            if getattr(v, "network_id", 0) == 0
        }
        return cls(views=views, quorum=quorum)

    def _unl_of(self, viewer: str) -> UNL:
        found = self._unls.get(viewer)
        if found is None:
            found = self._unls[viewer] = UNL.of(self.views[viewer])
        return found

    def absorb(self, body: dict) -> bool:
        """Record one validation; True when it newly forked its sequence."""
        if body["network_id"] != 0 or not self.views:
            return False
        sequence = body["sequence"]
        pages = self.signers.setdefault(sequence, {})
        names = pages.setdefault(body["page_hash"], [])
        if body["validator"] not in names:
            names.append(body["validator"])
            names.sort()
        if sequence in self.forked:
            return False
        validated = 0
        for signers in pages.values():
            signer_set = frozenset(signers)
            for viewer in self.views:
                unl = self._unl_of(viewer)
                if len(signer_set & unl.members) >= unl.quorum_size(
                    self.quorum
                ):
                    validated += 1
                    break
            if validated >= 2:
                self.forked.append(sequence)
                self.forked.sort()
                return True
        return False

    def payload(self) -> dict:
        return {
            "views": {name: list(members) for name, members in
                      sorted(self.views.items())},
            "quorum": self.quorum,
            "signers": {
                str(sequence): {
                    page: list(names) for page, names in sorted(pages.items())
                }
                for sequence, pages in sorted(self.signers.items())
            },
            "forked": list(self.forked),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ForkWatch":
        return cls(
            views={
                str(name): tuple(members)
                for name, members in payload["views"].items()
            },
            quorum=float(payload["quorum"]),
            signers={
                int(sequence): {
                    str(page): [str(n) for n in names]
                    for page, names in pages.items()
                }
                for sequence, pages in payload["signers"].items()
            },
            forked=[int(s) for s in payload["forked"]],
        )


class OnlineState:
    """The full materialized view, replayable from snapshot + WAL tail."""

    def __init__(
        self,
        feature_lists: Tuple[FeatureList, ...] = FIGURE3_FEATURE_LISTS,
        fork_watch: Optional[ForkWatch] = None,
    ):
        self.feature_lists = tuple(feature_lists)
        self.indexes = [OnlineFingerprintIndex(fl) for fl in self.feature_lists]
        self.fork_watch = fork_watch if fork_watch is not None else ForkWatch()
        #: Highest event sequence folded in (absorbed *or* quarantined).
        self.applied_seq = -1
        self.events = 0
        self.payments = 0
        self.validations = 0
        self.quarantined: Dict[str, int] = {}
        #: Table II-shaped delivery tallies: category -> [submitted, delivered].
        self.delivery: Dict[str, List[int]] = {
            "cross_currency": [0, 0],
            "single_currency": [0, 0],
        }

    # Folding -----------------------------------------------------------------

    def absorb(self, event: IngestEvent) -> None:
        """Fold one accepted event in; raises PoisonEventError on garbage.

        The caller (pipeline or replay) must route a poison event to
        :meth:`note_quarantined` instead — either way ``applied_seq``
        advances, so a snapshot cut covers every decided event.
        """
        validate_event_body(event)
        if event.kind == KIND_PAYMENT:
            self._absorb_payment(event.body)
        elif event.kind == KIND_VALIDATION:
            self._absorb_validation(event.body)
        self.events += 1
        self.applied_seq = event.seq

    def _absorb_payment(self, body: dict) -> None:
        self.payments += 1
        category = "cross_currency" if body["cc"] else "single_currency"
        row = self.delivery[category]
        row[0] += 1
        delivered = bool(body["ok"])
        if delivered:
            row[1] += 1
            # The fingerprint indexes mirror the batch dataset, which is
            # delivered-payments-only — failed payments never reached the
            # public ledger the paper's observer reads.
            amount = float(body["a"])
            timestamp = int(body["t"])
            for index in self.indexes:
                index.absorb(amount, timestamp, body["c"], body["d"])

    def _absorb_validation(self, body: dict) -> None:
        self.validations += 1
        if self.fork_watch.absorb(body):
            METRICS.count("online.forks")

    def note_quarantined(self, event: IngestEvent, reason: str) -> None:
        """Record a poison event without absorbing it (still advances)."""
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1
        self.events += 1
        self.applied_seq = event.seq

    # Reads -------------------------------------------------------------------

    @property
    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())

    def figure3_rows(self) -> List[Tuple[str, int, float]]:
        """(label, identified, IG%) per feature list, in Fig. 3 order."""
        delivered = (
            self.delivery["cross_currency"][1]
            + self.delivery["single_currency"][1]
        )
        return [
            (
                index.feature_list.label(),
                index.unique,
                index.information_gain(delivered),
            )
            for index in self.indexes
        ]

    def delivery_rows(self) -> List[Tuple[str, int, int]]:
        """(category, submitted, delivered) in a stable order + total."""
        cross = self.delivery["cross_currency"]
        single = self.delivery["single_currency"]
        return [
            ("Cross-currency", cross[0], cross[1]),
            ("Single-currency", single[0], single[1]),
            ("Total", cross[0] + single[0], cross[1] + single[1]),
        ]

    # Serialization -----------------------------------------------------------

    def payload(self) -> dict:
        return {
            "state_version": STATE_VERSION,
            "applied_seq": self.applied_seq,
            "events": self.events,
            "payments": self.payments,
            "validations": self.validations,
            "quarantined": dict(sorted(self.quarantined.items())),
            "delivery": {k: list(v) for k, v in sorted(self.delivery.items())},
            "figure3": [index.payload() for index in self.indexes],
            "fork_watch": self.fork_watch.payload(),
        }

    def canonical_json(self) -> str:
        return json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """sha256 over the canonical serialized state — the drill's bit."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_payload(cls, payload: dict) -> "OnlineState":
        if payload.get("state_version") != STATE_VERSION:
            raise IngestError(
                f"unsupported state version {payload.get('state_version')!r}"
            )
        figure3 = payload["figure3"]
        if len(figure3) != len(FIGURE3_FEATURE_LISTS):
            raise IngestError("snapshot has a different feature-list set")
        state = cls(
            fork_watch=ForkWatch.from_payload(payload["fork_watch"])
        )
        for index, entry, feature_list in zip(
            range(len(figure3)), figure3, FIGURE3_FEATURE_LISTS
        ):
            if entry.get("label") != feature_list.label():
                raise IngestError(
                    f"snapshot feature list {index} is {entry.get('label')!r},"
                    f" expected {feature_list.label()!r}"
                )
            state.indexes[index] = OnlineFingerprintIndex.from_payload(
                feature_list, entry
            )
        state.applied_seq = int(payload["applied_seq"])
        state.events = int(payload["events"])
        state.payments = int(payload["payments"])
        state.validations = int(payload["validations"])
        state.quarantined = {
            str(k): int(v) for k, v in payload["quarantined"].items()
        }
        state.delivery = {
            str(k): [int(x) for x in v]
            for k, v in payload["delivery"].items()
        }
        return state

    def summary(self) -> str:
        """Human-readable status block (CLI + live_status op)."""
        lines = [
            f"events {self.events} (payments {self.payments}, "
            f"validations {self.validations}, quarantined "
            f"{self.quarantined_total})",
            f"applied_seq {self.applied_seq}",
        ]
        for category, submitted, delivered in self.delivery_rows():
            rate = 100.0 * delivered / submitted if submitted else 0.0
            lines.append(
                f"  {category:16s} {delivered}/{submitted} delivered "
                f"({rate:.1f}%)"
            )
        for label, identified, gain in self.figure3_rows():
            lines.append(f"  IG {label:28s} {identified:8d}  {gain:6.2f}%")
        if self.fork_watch.forked:
            lines.append(f"  FORKED sequences: {self.fork_watch.forked}")
        return "\n".join(lines)
