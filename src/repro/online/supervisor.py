"""Supervised ingest: crash restarts with backoff, heartbeat watchdog.

The supervisor owns the pipeline lifecycle the way the node layer owns
consensus retries — and it reuses the same :class:`repro.node.RetryPolicy`
shape (base × multiplier^attempt, capped, jittered) for its backoff.
Three failure modes, three behaviours:

* **crash** (the pipeline raises): recover from disk and restart, with
  exponential backoff and a bounded restart budget; every restart is
  counted (``online.supervisor.restarts``) and surfaced in status.json;
* **stall** (events in flight but the heartbeat stops advancing): raise
  :class:`SupervisorError` *loudly* instead of restarting — a wedged
  thread cannot be safely torn down in-process, and two writers on one
  WAL would be worse than an exit.  The process manager (or the crash
  drill's ``kill -9``) restarts the process, and WAL recovery does the
  rest;
* **exhaustion** (restart budget spent): raise, chaining the last error.

A stall while *idle* — blocked waiting for the source to produce — is
not a stall at all and never trips the watchdog.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro.errors import IngestError
from repro.node import RetryPolicy
from repro.obs.metrics import METRICS
from repro.online.events import IngestEvent
from repro.online.pipeline import IngestConfig, IngestPipeline
from repro.online.state import ForkWatch

#: Default restart backoff: fast enough for drills, bounded for services.
DEFAULT_RETRY = RetryPolicy(
    max_retries=5, base_backoff=0.2, multiplier=2.0, max_backoff=10.0,
    jitter=0.25,
)


class SupervisorError(IngestError):
    """The supervisor gave up: stalled pipeline or exhausted restarts."""


class IngestSupervisor:
    """Runs one :class:`IngestPipeline` under restart/watchdog policy.

    ``source_factory(start_seq)`` must return a fresh event source that
    begins at ``start_seq`` — after a crash the pipeline recovers from
    disk and asks for exactly the events it has not yet accepted.
    """

    def __init__(
        self,
        config: IngestConfig,
        source_factory: Callable[[int], Iterable[IngestEvent]],
        max_restarts: int = 5,
        heartbeat_timeout: float = 30.0,
        retry: RetryPolicy = DEFAULT_RETRY,
        fork_watch: Optional[ForkWatch] = None,
        poll_interval: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if heartbeat_timeout <= 0:
            raise IngestError("heartbeat_timeout must be positive")
        self.config = config
        self.source_factory = source_factory
        self.max_restarts = max_restarts
        self.heartbeat_timeout = heartbeat_timeout
        self.retry = retry
        self.fork_watch = fork_watch
        self.poll_interval = poll_interval
        self.sleep = sleep
        self.restarts = 0
        self.pipeline: Optional[IngestPipeline] = None
        self._rng = np.random.default_rng(0)

    def request_stop(self) -> None:
        """Ask the running pipeline to drain gracefully (signal-safe)."""
        pipeline = self.pipeline
        if pipeline is not None:
            pipeline.request_stop()

    def _backoff(self, attempt: int) -> float:
        """RetryPolicy-shaped delay in *real* seconds (floats allowed)."""
        policy = self.retry
        delay = min(
            policy.max_backoff,
            policy.base_backoff * policy.multiplier ** attempt,
        )
        if policy.jitter:
            delay *= 1.0 + policy.jitter * (
                2.0 * float(self._rng.random()) - 1.0
            )
        return max(0.0, delay)

    def run(self) -> Tuple[str, IngestPipeline]:
        """Supervise until the source drains; returns (digest, pipeline)."""
        while True:
            pipeline = IngestPipeline(self.config, fork_watch=self.fork_watch)
            self.pipeline = pipeline
            pipeline.restarts = self.restarts
            pipeline.recover()
            source = self.source_factory(pipeline.state.applied_seq + 1)
            outcome: dict = {}

            def _work() -> None:
                try:
                    outcome["digest"] = pipeline.run(source)
                except BaseException as exc:  # noqa: BLE001 — relayed below
                    outcome["error"] = exc

            worker = threading.Thread(
                target=_work, name="repro-ingest", daemon=True
            )
            worker.start()
            while worker.is_alive():
                worker.join(self.poll_interval)
                silent = time.monotonic() - pipeline.heartbeat
                if (
                    worker.is_alive()
                    and not pipeline.idle
                    and silent > self.heartbeat_timeout
                ):
                    METRICS.count("online.supervisor.stalls")
                    raise SupervisorError(
                        f"heartbeat stall: pipeline silent for {silent:.1f}s "
                        f"with an event in flight at seq "
                        f"{pipeline.state.applied_seq + 1}"
                    )
            if "digest" in outcome:
                return outcome["digest"], pipeline
            error = outcome.get("error")
            self.restarts += 1
            METRICS.count("online.supervisor.restarts")
            if self.restarts > self.max_restarts:
                raise SupervisorError(
                    f"restart budget exhausted "
                    f"({self.max_restarts}): {error}"
                ) from error
            delay = self._backoff(self.restarts - 1)
            print(
                f"ingest supervisor: restart {self.restarts}/"
                f"{self.max_restarts} in {delay:.2f}s after: {error}",
                file=sys.stderr,
            )
            self.sleep(delay)
