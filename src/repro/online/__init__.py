"""Event-sourced live ingest: WAL, checkpointed state, supervised recovery.

The batch pipeline computes every artifact from a frozen archive; this
package is the *online* half of ROADMAP item 1.  A long-running ingest
process tails a live event source — a
:class:`~repro.stream.server.StreamServer` or a replayed archive — and
maintains the paper's results incrementally:

* an **online de-anonymizer**: one ⟨A, T, C, D⟩ fingerprint index per
  Fig. 3 feature list, absorbing each payment in O(1) amortized and
  answering "is this payment unique yet?" at any instant;
* **live Fig. 3 / Table II counters**: information gain per feature list
  and delivery rates per payment category, updated per event;
* a **per-view fork watch** over the validation stream, flagging
  sequences at which conflicting pages view-validated
  (:mod:`repro.consensus.forks` semantics, evaluated incrementally).

The robustness substrate is the point: every accepted event is fsynced
into a segmented write-ahead log before it is applied, state is sealed
into verified snapshots on a cadence, and recovery is *newest verified
snapshot + WAL tail replay* — a ``kill -9`` at any instant loses no
accepted events and resumes to a state digest bit-identical to an
uninterrupted run (the contract ``tools/live_drill.py`` enforces in CI).
"""

from repro.online.events import (
    EVENT_KINDS,
    KIND_PAYMENT,
    KIND_VALIDATION,
    IngestEvent,
    PoisonEventError,
    decode_event,
    encode_event,
    payment_event,
    validation_event,
)
from repro.online.pipeline import (
    BoundedEventQueue,
    IngestConfig,
    IngestPipeline,
    archive_event_source,
    read_status,
)
from repro.online.snapshots import SnapshotStore
from repro.online.state import ForkWatch, OnlineFingerprintIndex, OnlineState
from repro.online.supervisor import IngestSupervisor, SupervisorError
from repro.online.wal import WriteAheadLog

__all__ = [
    "EVENT_KINDS",
    "KIND_PAYMENT",
    "KIND_VALIDATION",
    "BoundedEventQueue",
    "ForkWatch",
    "IngestConfig",
    "IngestEvent",
    "IngestPipeline",
    "IngestSupervisor",
    "OnlineFingerprintIndex",
    "OnlineState",
    "PoisonEventError",
    "SnapshotStore",
    "SupervisorError",
    "WriteAheadLog",
    "archive_event_source",
    "decode_event",
    "encode_event",
    "payment_event",
    "read_status",
    "validation_event",
]
