"""Benchmark harness: machine-readable node- and pipeline-level timings.

Two scopes, matching how the system is consumed:

* **node** (:func:`bench_node`) — payment-engine and path-finder
  throughput on a dense star world: the per-payment hot path;
* **pipeline** (:func:`bench_pipeline`) — the end-to-end analysis chain
  the paper's figures ride on: synthetic generation → columnar ETL →
  Fig. 3 information gain.

Results are written as JSON with schema ``repro-bench/1``::

    {"schema": "repro-bench/1", "kind": "node", "config": {...},
     "baseline": {...}, "current": {...}, "speedup": {...}}

When the output file already exists with the same ``kind`` and
``config``, its ``baseline`` section is preserved and only ``current``
(and the derived ``speedup``) is replaced — committed files therefore
document before/after numbers across optimization work.  Metric naming
carries the direction: ``*_ops`` is throughput (higher is better,
speedup = current/baseline), ``*_s`` is wall-clock (lower is better,
speedup = baseline/current).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, Optional

SCHEMA = "repro-bench/1"

#: Default pipeline economy: big enough that the hot paths dominate,
#: small enough for a sub-minute smoke run.
PIPELINE_CONFIG: Dict[str, int] = {
    "seed": 20170652,
    "n_payments": 12_000,
    "n_users": 360,
    "n_gateways": 20,
    "n_market_makers": 120,
    "n_offers": 48_000,
}

NODE_CONFIG: Dict[str, int] = {"n_users": 200, "iterations": 2000}

#: Node-bench throughput metrics gated against the committed baseline.
GATED_NODE_METRICS = ("engine_submit_ops", "plan_payment_ops")

#: Allowed fractional drop below a baseline before the gate fails.
GATE_TOLERANCE = 0.10


def gate_payload(
    payload: Dict[str, object], tolerance: float = GATE_TOLERANCE
) -> list:
    """Regression failures for one bench payload (empty list = pass).

    Node throughput metrics must stay within ``tolerance`` of the file's
    baseline.  The pipeline's parallel-speedup ratio is gated **only when
    the host that produced the current numbers has more than one core**:
    on a 1-core container the worker pool is pure overhead and ~0.1x is
    the honest measurement, not a regression — gating it there would turn
    every CI run on a small runner into a false alarm, and *trusting* it
    there would let those misleading numbers become baseline truth.
    """
    baseline = payload.get("baseline") or {}
    current = payload.get("current") or {}
    cpu_count = payload.get("cpu_count") or 1
    kind = payload.get("kind")
    if kind == "node":
        keys = GATED_NODE_METRICS
    elif kind == "pipeline":
        keys = ("figure3_parallel_x",) if cpu_count > 1 else ()
    else:
        keys = ()
    failures = []
    for key in keys:
        then = baseline.get(key)
        now = current.get(key)
        if not isinstance(then, (int, float)) or not isinstance(now, (int, float)):
            continue
        floor = (1.0 - tolerance) * then
        if now < floor:
            failures.append(
                f"{key}: {now:g} below gate {floor:g} "
                f"(baseline {then:g}, tolerance {tolerance:.0%})"
            )
    return failures


def _speedups(
    baseline: Dict[str, float], current: Dict[str, float]
) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, now in current.items():
        then = baseline.get(key)
        if not isinstance(then, (int, float)) or not isinstance(now, (int, float)):
            continue
        if then <= 0 or now <= 0:
            continue
        if key.endswith("_ops"):
            out[key] = round(now / then, 4)
        elif key.endswith("_s"):
            out[key] = round(then / now, 4)
    return out


def write_result(
    path: Path, kind: str, config: Dict[str, int], current: Dict[str, float]
) -> Dict[str, object]:
    """Write (or update) a benchmark JSON file, keeping its baseline.

    The baseline is carried over only when the existing file measured the
    same ``kind`` with the same ``config`` — numbers from a different
    workload are not comparable and are discarded.
    """
    from repro.durability import atomic_write
    from repro.obs.metrics import METRICS

    path = Path(path)
    baseline: Dict[str, float] = dict(current)
    if path.exists():
        # A corrupt result file (truncated JSON, a crash mid-write before
        # writes were atomic, …) is a cold cache, never a crash: the
        # baseline restarts from the current numbers and the file is
        # rewritten whole below.  Only load failures degrade — anything
        # else (a logic error here) must still propagate.
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            previous = None
            METRICS.count("bench.history_load_failures")
            print(
                f"bench: discarding unreadable history {path}: {exc}",
                file=sys.stderr,
            )
        if (
            isinstance(previous, dict)
            and previous.get("kind") == kind
            and previous.get("config") == config
            and isinstance(previous.get("baseline"), dict)
        ):
            baseline = previous["baseline"]
    payload: Dict[str, object] = {
        "schema": SCHEMA,
        "kind": kind,
        "config": config,
        # The host that produced ``current``: regression gates use this to
        # skip parallel-speedup checks on single-core machines, where a
        # worker pool is pure overhead and 0.1x is the honest number.
        "cpu_count": os.cpu_count() or 1,
        "baseline": baseline,
        "current": current,
        "speedup": _speedups(baseline, current),
    }
    with atomic_write(str(path)) as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# Node-level --------------------------------------------------------------------


def bench_node(
    n_users: int = NODE_CONFIG["n_users"],
    iterations: int = NODE_CONFIG["iterations"],
) -> Dict[str, float]:
    """Engine-submit and plan-payment throughput on a star world.

    Every user holds USD at one gateway, so every payment routes
    user → gateway → user: two hops through the single hub the BFS must
    expand — the worst case for successor recomputation and exactly what
    the incremental trust-graph index accelerates.
    """
    from repro.ledger.accounts import account_from_name
    from repro.ledger.amounts import Amount
    from repro.ledger.currency import USD
    from repro.ledger.state import LedgerState
    from repro.payments.engine import PaymentEngine
    from repro.payments.graph import TrustGraph
    from repro.payments.pathfinding import plan_payment

    state = LedgerState()
    gateway = account_from_name("bench-gateway", namespace="bench-node")
    state.create_account(gateway, 10**12)
    users = []
    for index in range(n_users):
        account = account_from_name(f"bench-user-{index}", namespace="bench-node")
        state.create_account(account, 10**10)
        state.set_trust(account, gateway, Amount.from_value(USD, 10**7))
        state.apply_hop(gateway, account, Amount.from_value(USD, 10**5))
        users.append(account)

    engine = PaymentEngine(state)
    # The batch entry point is what the replay loops use; building the
    # request tuples is enqueue work, not submit work, so it stays outside
    # the timed region.
    batch = [
        (
            users[i % n_users],
            users[(i + 7) % n_users],
            Amount.from_value(USD, 3),
        )
        for i in range(iterations)
    ]
    start = time.perf_counter()
    results = engine.submit_batch(batch)
    submit_ops = iterations / (time.perf_counter() - start)
    for result in results:
        if not result.success:  # pragma: no cover - world is always liquid
            raise RuntimeError(f"bench payment failed: {result.error}")

    graph = TrustGraph(state, USD)
    start = time.perf_counter()
    for i in range(iterations):
        plan_payment(graph, users[i % n_users], users[(i + 13) % n_users], 3.0)
    plan_ops = iterations / (time.perf_counter() - start)

    return {
        "engine_submit_ops": round(submit_ops, 2),
        "plan_payment_ops": round(plan_ops, 2),
    }


# Pipeline-level ----------------------------------------------------------------


def bench_pipeline(
    config: Optional[Dict[str, int]] = None,
    jobs: int = 4,
) -> Dict[str, float]:
    """Generation → ETL → Fig. 3 wall-clock on a reduced economy.

    Fig. 3 is measured twice — serial and sharded across ``jobs`` worker
    processes via the same map/reduce contract the CLI's ``--jobs`` flag
    uses — and the results are asserted identical before timings are
    reported.  ``figure3_parallel_x`` is the recorded serial/parallel
    speedup (>1 means sharding won; expect ~1 or below on a single-core
    host, where the worker pool is pure overhead).
    """
    from repro.analysis.dataset import TransactionDataset
    from repro.api.artifacts import dataset_shards
    from repro.core.deanonymizer import (
        Deanonymizer,
        figure3_shard_partial,
        merge_figure3_partials,
    )
    from repro.parallel.engine import effective_jobs, map_shards
    from repro.parallel.shm import release_shards, shard_fn
    from repro.synthetic.config import EconomyConfig
    from repro.synthetic.generator import LedgerHistoryGenerator

    economy = EconomyConfig(**(config or PIPELINE_CONFIG))

    start = time.perf_counter()
    history = LedgerHistoryGenerator(economy).generate()
    generation_s = time.perf_counter() - start

    start = time.perf_counter()
    dataset = TransactionDataset.from_records(history.records)
    etl_s = time.perf_counter() - start

    start = time.perf_counter()
    gains = Deanonymizer(dataset).figure3()
    fig3_s = time.perf_counter() - start

    jobs = effective_jobs(jobs=jobs)

    def parallel_fig3() -> tuple:
        """One production-path sharded run: publish -> map -> merge."""
        start = time.perf_counter()
        shards = dataset_shards(dataset, jobs)
        try:
            partials = map_shards(
                "fig3", shard_fn(figure3_shard_partial), shards, jobs
            )
            merged = merge_figure3_partials(partials)
        finally:
            release_shards(shards)
        return merged, time.perf_counter() - start

    if jobs > 1:
        # Cold first: pays the pool spawn and first shm publish.  Warm
        # second: what every artifact after the first sees in a run —
        # the number the speedup gate reasons about.
        merged, fig3_cold_s = parallel_fig3()
        merged_warm, fig3_parallel_s = parallel_fig3()
        if merged_warm != merged:  # pragma: no cover - determinism guard
            raise RuntimeError("warm sharded fig3 diverged from cold run")
    else:  # kill switch set: record the serial path under the parallel key
        start = time.perf_counter()
        merged = Deanonymizer(dataset).figure3()
        fig3_parallel_s = time.perf_counter() - start
        fig3_cold_s = fig3_parallel_s
    if merged != gains:  # pragma: no cover - determinism regression guard
        raise RuntimeError("sharded fig3 diverged from the serial result")

    return {
        "generation_s": round(generation_s, 4),
        "etl_s": round(etl_s, 5),
        "figure3_s": round(fig3_s, 5),
        "figure3_parallel_cold_s": round(fig3_cold_s, 5),
        "figure3_parallel_s": round(fig3_parallel_s, 5),
        "figure3_parallel_x": round(fig3_s / fig3_parallel_s, 4),
        "parallel_jobs": jobs,
        "rows": len(dataset),
        "failed_payments": history.failed_payments,
        "fig3_first_identified": gains[0].identified,
    }


def run_node(out_path: Path) -> Dict[str, object]:
    return write_result(out_path, "node", dict(NODE_CONFIG), bench_node())


def run_pipeline(out_path: Path, jobs: int = 4) -> Dict[str, object]:
    return write_result(
        out_path, "pipeline", dict(PIPELINE_CONFIG), bench_pipeline(jobs=jobs)
    )
