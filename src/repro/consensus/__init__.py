"""The RPCA consensus substrate.

Validators with behaviour profiles, UNLs, deliberation rounds with
escalating thresholds, the 80 % validation quorum, a message-delivery
model, and the engine that runs whole collection periods for Fig. 2.
"""

from repro.consensus.engine import (
    CLOSE_INTERVAL_SECONDS,
    ConsensusEngine,
    ConsensusReport,
    ValidatorStats,
    default_tx_supplier,
)
from repro.consensus.faults import (
    Behaviour,
    ValidatorProfile,
    active,
    byzantine,
    forked,
    lagging,
    offline,
    windowed,
)
from repro.consensus.network import NetworkModel
from repro.consensus.proposals import Proposal, Validation
from repro.consensus.rewards import (
    IncentiveSimulation,
    Operator,
    RewardPolicy,
    compare_policies,
)
from repro.consensus.rounds import (
    DEFAULT_QUORUM,
    DEFAULT_THRESHOLDS,
    RoundOutcome,
    page_hash_for,
    run_round,
)
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator, validator_key_id

__all__ = [
    "Behaviour",
    "IncentiveSimulation",
    "Operator",
    "RewardPolicy",
    "compare_policies",
    "CLOSE_INTERVAL_SECONDS",
    "ConsensusEngine",
    "ConsensusReport",
    "DEFAULT_QUORUM",
    "DEFAULT_THRESHOLDS",
    "NetworkModel",
    "Proposal",
    "RoundOutcome",
    "UNL",
    "Validation",
    "Validator",
    "ValidatorProfile",
    "ValidatorStats",
    "active",
    "byzantine",
    "default_tx_supplier",
    "forked",
    "lagging",
    "offline",
    "page_hash_for",
    "run_round",
    "validator_key_id",
    "windowed",
]
