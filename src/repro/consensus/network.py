"""A simple message-delivery model for the consensus simulation.

Consensus rounds are synchronous (rippled's deliberation runs on a timer),
so the network model reduces to: *which proposals reach which listeners
within the iteration window*.  Healthy validators in well-connected data
centres deliver essentially always; lagging validators both drop incoming
proposals and fail to get their own out in time — the paper attributes the
zero-valid-page validators partly to exactly this ("their latency made it
almost impossible to participate").

The model also supports partitions, used by the robustness ablation bench
to study how consensus availability degrades when validators are cut off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro.consensus.faults import Behaviour
from repro.consensus.validator import Validator


@dataclass
class NetworkModel:
    """Per-validator delivery reliability plus optional partitions.

    ``base_loss`` is the background message-loss probability between two
    healthy validators; per-behaviour penalties are added on top.
    """

    base_loss: float = 0.01
    lagging_loss: float = 0.55
    partitions: List[Set[str]] = field(default_factory=list)

    def _loss_for(self, validator: Validator) -> float:
        if validator.behaviour is Behaviour.LAGGING:
            return self.lagging_loss
        if validator.behaviour is Behaviour.OFFLINE:
            return 0.6
        return 0.0

    def _partitioned(self, a: str, b: str) -> bool:
        """True when a and b are in different declared partitions."""
        if not self.partitions:
            return False
        group_a = group_b = None
        for index, group in enumerate(self.partitions):
            if a in group:
                group_a = index
            if b in group:
                group_b = index
        return group_a != group_b

    def delivery_array(
        self,
        participants: Sequence[Validator],
        rng: np.random.Generator,
        extra_loss: float = 0.0,
        blocked: FrozenSet[str] = frozenset(),
    ) -> np.ndarray:
        """Vectorized delivery sampling: ``out[i, j]`` is True when the
        proposal of participant ``i`` reaches participant ``j``.

        Same semantics as :meth:`delivery_matrix` but sampled as one numpy
        draw, which is what lets the engine run tens of thousands of rounds.

        ``extra_loss`` and ``blocked`` are chaos-injection hooks: additional
        loss probability applied to every link, and speakers whose outgoing
        proposals are all suppressed this round.  Both default to no effect
        and consume no extra randomness, keeping fault-free runs
        bit-for-bit identical.
        """
        n = len(participants)
        losses = np.array([self._loss_for(v) for v in participants])
        networks = np.array([v.network_id for v in participants])
        loss = np.minimum(
            0.98, self.base_loss + extra_loss + losses[:, None] + losses[None, :]
        )
        delivered = rng.random((n, n)) >= loss
        delivered &= networks[:, None] == networks[None, :]
        if self.partitions:
            for i, a in enumerate(participants):
                for j, b in enumerate(participants):
                    if i != j and self._partitioned(a.name, b.name):
                        delivered[i, j] = False
        if blocked:
            for i, speaker in enumerate(participants):
                if speaker.name in blocked:
                    delivered[i, :] = False
        np.fill_diagonal(delivered, False)
        return delivered

    def delivery_matrix(
        self,
        participants: Sequence[Validator],
        rng: np.random.Generator,
    ) -> Dict[Tuple[str, str], bool]:
        """Sample which (speaker, listener) proposal deliveries succeed.

        Only pairs on the same ledger instance (network id) can talk; forked
        validators gossip among themselves.
        """
        delivered: Dict[Tuple[str, str], bool] = {}
        for speaker in participants:
            for listener in participants:
                if speaker.name == listener.name:
                    continue
                if speaker.network_id != listener.network_id:
                    delivered[(speaker.name, listener.name)] = False
                    continue
                if self._partitioned(speaker.name, listener.name):
                    delivered[(speaker.name, listener.name)] = False
                    continue
                loss = (
                    self.base_loss
                    + self._loss_for(speaker)
                    + self._loss_for(listener)
                )
                delivered[(speaker.name, listener.name)] = rng.random() >= min(
                    0.98, loss
                )
        return delivered
