"""Validator behaviour profiles and fault injection.

The paper's Fig. 2 shows four qualitatively different validator behaviours,
all of which we model as a *profile* attached to each simulated validator:

* **active** — online, in sync; nearly every signed page validates.
* **lagging** — limited hardware/network: often misses proposal exchange,
  signs stale or divergent pages; "a very small fraction of valid pages".
* **forked** — follows a different ledger instance (a private ledger or the
  ``testnet.ripple.com`` servers): signs hundreds of thousands of pages,
  none of which appear in the main ledger.
* **offline** — registered but (mostly) absent.

A profile can also carry a *presence window* so the validator appears or
disappears during a collection period (the churn Section IV observes), and
a ``byzantine`` flag for validators that propose conflicting sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple


class Behaviour(enum.Enum):
    ACTIVE = "active"
    LAGGING = "lagging"
    FORKED = "forked"
    OFFLINE = "offline"
    BYZANTINE = "byzantine"


@dataclass(frozen=True)
class ValidatorProfile:
    """Statistical behaviour of one validator in the round simulation.

    ``availability``  — probability of participating in a given round.
    ``sync_quality``  — probability that a signed page matches the
                        consensus page (1.0 for a healthy validator).
    ``network_id``    — which ledger instance the validator follows
                        (0 = main net; anything else is a fork/test-net).
    ``presence``      — optional (start, end) round window; outside it the
                        validator emits nothing.
    ``receive_probability`` — probability of holding any given pending
                        transaction when deliberation starts; ``None``
                        keeps the behaviour-keyed default (0.98 active,
                        0.6 lagging, 0.5 offline).  The adversarial
                        scenario packs lower it to model the poor tx
                        propagation their source analyses assume.
    """

    behaviour: Behaviour
    availability: float = 1.0
    sync_quality: float = 1.0
    network_id: int = 0
    presence: Optional[Tuple[int, int]] = None
    receive_probability: Optional[float] = None

    def present_at(self, round_index: int) -> bool:
        if self.presence is None:
            return True
        start, end = self.presence
        return start <= round_index < end


def active(availability: float = 0.97) -> ValidatorProfile:
    """A healthy, contributing validator (R1–R5 and peers)."""
    return ValidatorProfile(
        Behaviour.ACTIVE, availability=availability, sync_quality=0.995
    )


def lagging(availability: float = 0.5, sync_quality: float = 0.06) -> ValidatorProfile:
    """Under-provisioned: present at times, rarely in sync."""
    return ValidatorProfile(
        Behaviour.LAGGING, availability=availability, sync_quality=sync_quality
    )


def forked(network_id: int, availability: float = 0.95) -> ValidatorProfile:
    """Follows a parallel ledger instance (private net or test-net)."""
    return ValidatorProfile(
        Behaviour.FORKED,
        availability=availability,
        sync_quality=1.0,
        network_id=network_id,
    )


def offline(availability: float = 0.02) -> ValidatorProfile:
    """Registered but essentially absent."""
    return ValidatorProfile(
        Behaviour.OFFLINE, availability=availability, sync_quality=0.5
    )


def byzantine(availability: float = 0.97) -> ValidatorProfile:
    """Proposes conflicting transaction sets to different peers."""
    return ValidatorProfile(
        Behaviour.BYZANTINE, availability=availability, sync_quality=1.0
    )


@dataclass(frozen=True)
class RoundFaults:
    """Faults injected into one consensus round.

    Produced by :class:`repro.chaos.ChaosInjector` and consumed by
    :func:`repro.consensus.rounds.run_round`; an absent (``None``) instance
    means the round runs exactly the pre-chaos code path, so simulations
    with chaos off stay bit-for-bit reproducible.

    ``extra_loss``          — additional message-loss probability on every
                              link this round (message-drop schedules).
    ``blocked``             — validators whose outgoing proposals are all
                              suppressed this round (a delayed message in a
                              synchronous round model arrives too late to
                              count, i.e. it is dropped for the round).
    ``stale``               — validators whose proposals arrive one
                              deliberation iteration late (delay/reorder of
                              position updates).
    ``behaviour_overrides`` — validator name -> behaviour forced for this
                              round (byzantine flips, forced recovery).
    ``crashed``             — validators that are down this round; they do
                              not participate at all.
    ``partitions``          — partition groups in force this round, replacing
                              the network model's static partitions.
    ``equivocating``        — byzantine validators that, instead of closing
                              their own page, co-sign *every* page closed by
                              another main-net validator this round — the
                              vote-splitting equivocation of the cited
                              safety analyses.
    """

    extra_loss: float = 0.0
    blocked: FrozenSet[str] = frozenset()
    stale: FrozenSet[str] = frozenset()
    behaviour_overrides: Dict[str, Behaviour] = field(default_factory=dict)
    crashed: FrozenSet[str] = frozenset()
    partitions: Tuple[FrozenSet[str], ...] = ()
    equivocating: FrozenSet[str] = frozenset()

    def behaviour_of(self, validator: "object") -> Behaviour:
        """Effective behaviour of ``validator`` under this round's faults."""
        override = self.behaviour_overrides.get(validator.name)
        return override if override is not None else validator.behaviour

    @property
    def any_active(self) -> bool:
        return bool(
            self.extra_loss
            or self.blocked
            or self.stale
            or self.behaviour_overrides
            or self.crashed
            or self.partitions
            or self.equivocating
        )


def windowed(profile: ValidatorProfile, start: int, end: int) -> ValidatorProfile:
    """Restrict ``profile`` to the round window [start, end)."""
    return ValidatorProfile(
        behaviour=profile.behaviour,
        availability=profile.availability,
        sync_quality=profile.sync_quality,
        network_id=profile.network_id,
        presence=(start, end),
    )
