"""Unique Node Lists (UNLs) — who trusts whose validations.

Every Ripple server configures a UNL: the set of validators whose proposals
and validations it listens to.  Consensus safety in RPCA depends on UNL
overlap; in practice (and in the paper's observations) nearly everyone runs
the default list anchored on the five Ripple Labs validators R1–R5, which is
precisely the centralization concern Section IV raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator

from repro.errors import QuorumError


@dataclass(frozen=True)
class UNL:
    """An immutable set of trusted validator names."""

    members: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.members:
            raise QuorumError("a UNL cannot be empty")

    @classmethod
    def of(cls, names: Iterable[str]) -> "UNL":
        return cls(frozenset(names))

    def __contains__(self, name: str) -> bool:
        return name in self.members

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.members))

    def __len__(self) -> int:
        return len(self.members)

    def quorum_size(self, quorum: float = 0.8) -> int:
        """Minimum number of agreeing members for validation.

        Ripple's original protocol required 80 % agreement; the analyses the
        paper cites ([7], [8]) led to raising this from the earlier 50 %.
        Rounded up so that e.g. 80 % of 5 is exactly 4.
        """
        if not 0.0 < quorum <= 1.0:
            raise QuorumError(f"quorum must be in (0, 1], got {quorum}")
        size = len(self.members)
        return size - int(size * (1.0 - quorum) + 1e-9)

    def overlap(self, other: "UNL") -> float:
        """Jaccard overlap with another UNL (a safety diagnostic)."""
        union = self.members | other.members
        if not union:
            return 1.0
        return len(self.members & other.members) / len(union)
