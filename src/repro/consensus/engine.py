"""The consensus engine: drive rounds, track chains, account validators.

``ConsensusEngine`` owns everything :func:`repro.consensus.rounds.run_round`
does not: the evolving head hash of each ledger instance (main net plus any
forks), the supply of pending transactions, validation observers (the
validation *stream* of Section IV subscribes here), and the per-validator
accounting that Fig. 2 plots — pages signed vs. pages that ended up in the
main ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.consensus.network import NetworkModel
from repro.consensus.proposals import Validation
from repro.consensus.rounds import (
    DEFAULT_QUORUM,
    DEFAULT_THRESHOLDS,
    RoundOutcome,
    run_round,
)
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.errors import ConsensusError
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER

#: Seconds between ledger closes (the paper: payments settle in 5–10 s).
CLOSE_INTERVAL_SECONDS = 5

TxSupplier = Callable[[int, np.random.Generator], FrozenSet[bytes]]
ValidationObserver = Callable[[Validation], None]


class ChaosHook:
    """Duck-typed interface the engine expects from a chaos injector.

    :class:`repro.chaos.ChaosInjector` is the real implementation; the
    engine only relies on these two methods so the consensus layer never
    imports the chaos package.
    """

    def faults_for_round(self, absolute_round, validators):  # pragma: no cover
        """Return a :class:`~repro.consensus.faults.RoundFaults` or None."""
        raise NotImplementedError

    def note_round(self, faults, outcome):  # pragma: no cover
        """Account one fault-injected round's observable effects."""
        raise NotImplementedError


def default_tx_supplier(round_index: int, rng: np.random.Generator) -> FrozenSet[bytes]:
    """A small random batch of pending transaction hashes per round."""
    count = int(rng.integers(4, 12))
    return frozenset(
        rng.integers(0, 256, size=32, dtype=np.uint8).tobytes() for _ in range(count)
    )


@dataclass
class ValidatorStats:
    """Fig. 2's per-validator bar pair."""

    name: str
    is_ripple_labs: bool = False
    total_pages: int = 0
    valid_pages: int = 0

    @property
    def valid_fraction(self) -> float:
        return self.valid_pages / self.total_pages if self.total_pages else 0.0


@dataclass
class ConsensusReport:
    """Aggregate outcome of an engine run."""

    rounds_run: int = 0
    rounds_validated: int = 0
    stats: Dict[str, ValidatorStats] = field(default_factory=dict)
    main_chain_hashes: List[bytes] = field(default_factory=list)
    outcomes: List[RoundOutcome] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of rounds that produced a fully validated page."""
        return self.rounds_validated / self.rounds_run if self.rounds_run else 0.0

    def sorted_stats(self) -> List[ValidatorStats]:
        """Ripple Labs validators first, then alphabetical — the Fig. 2 x-axis."""
        return sorted(
            self.stats.values(), key=lambda s: (not s.is_ripple_labs, s.name)
        )


class ConsensusEngine:
    """Runs RPCA rounds over a fixed validator roster."""

    def __init__(
        self,
        validators: Sequence[Validator],
        master_unl: Optional[UNL] = None,
        network: Optional[NetworkModel] = None,
        quorum: float = DEFAULT_QUORUM,
        thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
        seed: int = 0,
        sign_pages: bool = False,
        keep_outcomes: bool = False,
        chaos: Optional["ChaosHook"] = None,
    ):
        if not validators:
            raise ConsensusError("need at least one validator")
        names = [v.name for v in validators]
        if len(set(names)) != len(names):
            raise ConsensusError("validator names must be unique")
        self.validators = list(validators)
        if master_unl is None:
            master_unl = UNL.of(
                v.name for v in validators if v.network_id == 0
            )
        self.master_unl = master_unl
        self.network = network or NetworkModel()
        self.quorum = quorum
        self.thresholds = tuple(thresholds)
        self.rng = np.random.default_rng(seed)
        self.sign_pages = sign_pages
        self.keep_outcomes = keep_outcomes
        self.chaos = chaos
        self.observers: List[ValidationObserver] = []
        #: Current head hash per ledger instance (network id).
        self.heads: Dict[int, bytes] = {0: b"\x00" * 32}
        self.sequence = 1
        self.close_time = 0

    def subscribe(self, observer: ValidationObserver) -> None:
        """Register a validation-stream observer (e.g. the collector)."""
        self.observers.append(observer)

    def run(
        self,
        num_rounds: int,
        tx_supplier: TxSupplier = default_tx_supplier,
    ) -> ConsensusReport:
        """Run ``num_rounds`` consensus rounds and return the report."""
        with TRACER.span(
            "consensus.run", rounds=num_rounds, sequence=self.sequence
        ):
            report = self._run(num_rounds, tx_supplier)
        if METRICS.enabled:
            METRICS.count("consensus.rounds", report.rounds_run)
            METRICS.count("consensus.validated", report.rounds_validated)
        return report

    def _run(
        self,
        num_rounds: int,
        tx_supplier: TxSupplier = default_tx_supplier,
    ) -> ConsensusReport:
        report = ConsensusReport()
        for validator in self.validators:
            report.stats[validator.name] = ValidatorStats(
                name=validator.name, is_ripple_labs=validator.is_ripple_labs
            )

        for round_index in range(num_rounds):
            tx_pool = tx_supplier(round_index, self.rng)
            # Chaos schedules are expressed in *absolute* rounds so they
            # stay meaningful when a node drives the engine one round at a
            # time (sequence 1 closed the first page => round 0).
            faults = None
            if self.chaos is not None:
                faults = self.chaos.faults_for_round(
                    self.sequence - 1, self.validators
                )
            saved_partitions = self.network.partitions
            if faults is not None and faults.partitions:
                self.network.partitions = list(faults.partitions)
            try:
                outcome = run_round(
                    round_index=round_index,
                    sequence=self.sequence,
                    parent_hashes=self.heads,
                    close_time=self.close_time,
                    tx_pool=tx_pool,
                    validators=self.validators,
                    master_unl=self.master_unl,
                    network=self.network,
                    rng=self.rng,
                    thresholds=self.thresholds,
                    quorum=self.quorum,
                    sign_pages=self.sign_pages,
                    faults=faults,
                )
            finally:
                self.network.partitions = saved_partitions
            if faults is not None and self.chaos is not None:
                self.chaos.note_round(faults, outcome)
            self._advance(outcome)
            self._account(report, outcome)
            if self.keep_outcomes:
                report.outcomes.append(outcome)
            report.rounds_run += 1
            if outcome.validated:
                report.rounds_validated += 1
                report.main_chain_hashes.append(outcome.validated_hash)
            for validation in outcome.validations:
                for observer in self.observers:
                    observer(validation)
        return report

    # Internals ---------------------------------------------------------------

    def _advance(self, outcome: RoundOutcome) -> None:
        """Move chain heads forward after a round."""
        if outcome.validated:
            self.heads[0] = outcome.validated_hash
        # Forked instances always advance on their own page: find one
        # validation per non-main network and adopt its hash as head.
        seen_networks = set()
        for validation in outcome.validations:
            if validation.network_id != 0 and validation.network_id not in seen_networks:
                self.heads[validation.network_id] = validation.page_hash
                seen_networks.add(validation.network_id)
        self.sequence += 1
        self.close_time += CLOSE_INTERVAL_SECONDS

    def _account(self, report: ConsensusReport, outcome: RoundOutcome) -> None:
        for validation in outcome.validations:
            stats = report.stats[validation.validator]
            stats.total_pages += 1
            if outcome.validated and validation.page_hash == outcome.validated_hash:
                stats.valid_pages += 1
