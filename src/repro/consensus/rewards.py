"""Validator incentives: the reward system Section IV proposes.

The paper's remedy for the thin validator population: "introducing a
carefully crafted reward system ... defined as an added tax value to the
transactions that go through in each validation round.  A larger number of
validators would lead to a better distributed validation process".

This module makes that proposal concrete and testable:

* a :class:`RewardPolicy` taxes each validated round's transactions and
  splits the pot among the validators whose signatures made the round;
* an :class:`IncentiveSimulation` evolves a population of candidate
  operators who join when expected reward beats their operating cost and
  leave when it doesn't;
* the output is the trajectory of active-validator count, plus the
  resulting decentralization (takeover-resistance) metrics, so the
  proposal can be compared against the no-reward status quo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConsensusError


@dataclass(frozen=True)
class RewardPolicy:
    """How validation work is paid.

    ``tax_per_transaction``  — reward units collected per transaction in a
                               validated round (the paper's "added tax").
    ``ripple_labs_waiver``   — R1–R5 run for ecosystem health, not profit;
                               when True their share is redistributed.
    """

    tax_per_transaction: float = 0.05
    ripple_labs_waiver: bool = True

    def round_pot(self, transactions: int) -> float:
        return self.tax_per_transaction * transactions

    def split(
        self, pot: float, signers: Sequence[str], ripple_labs: Sequence[str]
    ) -> Dict[str, float]:
        """Equal split among signers (optionally excluding Ripple Labs)."""
        if not signers:
            return {}
        eligible = [
            name
            for name in signers
            if not (self.ripple_labs_waiver and name in ripple_labs)
        ] or list(signers)
        share = pot / len(eligible)
        return {name: share for name in eligible}


@dataclass
class Operator:
    """A candidate validator operator with an operating cost."""

    name: str
    #: reward units per epoch needed to break even (hardware + bandwidth).
    operating_cost: float
    active: bool = False
    total_earned: float = 0.0
    #: epochs of consecutive loss tolerated before leaving.
    patience: int = 3
    _losing_streak: int = field(default=0, repr=False)

    def consider(self, expected_reward: float) -> None:
        """Join/leave decision at an epoch boundary."""
        if not self.active:
            if expected_reward > self.operating_cost:
                self.active = True
                self._losing_streak = 0
            return
        if expected_reward < self.operating_cost:
            self._losing_streak += 1
            if self._losing_streak >= self.patience:
                self.active = False
        else:
            self._losing_streak = 0


@dataclass
class EpochOutcome:
    """One epoch of the incentive simulation."""

    epoch: int
    active_validators: int
    pot_per_epoch: float
    reward_per_validator: float
    takeover_top3: float

    @property
    def decentralized(self) -> bool:
        """True when no 3 validators control a validation quorum's worth."""
        return self.takeover_top3 < 0.8


class IncentiveSimulation:
    """Evolve the validator population under a reward policy.

    Model: each epoch the network validates ``rounds_per_epoch`` rounds of
    ``transactions_per_round`` transactions; the pot is split among active
    validators; operators join or leave at epoch boundaries based on their
    expected share.  Operating costs are heterogeneous (log-normal), so the
    equilibrium population size is where the marginal operator breaks even
    — exactly the lever the paper's proposal turns.
    """

    def __init__(
        self,
        policy: RewardPolicy,
        n_candidates: int = 200,
        bootstrap_validators: int = 5,
        rounds_per_epoch: int = 240_000 // 14,  # one day of 5s closes
        transactions_per_round: float = 8.0,
        cost_median: float = 25.0,
        cost_sigma: float = 1.0,
        seed: int = 0,
    ):
        if n_candidates < bootstrap_validators:
            raise ConsensusError("need at least as many candidates as bootstrap")
        self.policy = policy
        self.rounds_per_epoch = rounds_per_epoch
        self.transactions_per_round = transactions_per_round
        rng = np.random.default_rng(seed)
        costs = rng.lognormal(np.log(cost_median), cost_sigma, n_candidates)
        self.operators = [
            Operator(name=f"op-{i:03d}", operating_cost=float(costs[i]))
            for i in range(n_candidates)
        ]
        # Ripple Labs bootstrap the network regardless of economics.
        self.ripple_labs = [f"R{i}" for i in range(1, bootstrap_validators + 1)]

    # Internals ------------------------------------------------------------------

    def _pot_per_epoch(self) -> float:
        return self.policy.round_pot(
            int(self.rounds_per_epoch * self.transactions_per_round)
        )

    def _active(self) -> List[Operator]:
        return [op for op in self.operators if op.active]

    def _takeover_top3(self, active_count: int) -> float:
        """Share of validation signatures the top 3 signers hold.

        With equal, honest participation this is just 3/(n); the bootstrap
        validators always sign.
        """
        total = active_count + len(self.ripple_labs)
        return min(1.0, 3.0 / total)

    # API ------------------------------------------------------------------------

    def run(self, epochs: int = 50) -> List[EpochOutcome]:
        """Simulate epochs; returns the population trajectory."""
        history: List[EpochOutcome] = []
        for epoch in range(epochs):
            active = self._active()
            pot = self._pot_per_epoch()
            signer_count = len(active) + (
                0 if self.policy.ripple_labs_waiver else len(self.ripple_labs)
            )
            reward_each = pot / max(1, signer_count)
            history.append(
                EpochOutcome(
                    epoch=epoch,
                    active_validators=len(active) + len(self.ripple_labs),
                    pot_per_epoch=pot,
                    reward_per_validator=reward_each,
                    takeover_top3=self._takeover_top3(len(active)),
                )
            )
            # Operators decide based on what joining would dilute the pot to.
            for operator in self.operators:
                anticipated = pot / max(1, signer_count + (0 if operator.active else 1))
                operator.consider(anticipated)
                if operator.active:
                    operator.total_earned += reward_each
        return history

    def equilibrium_size(self, epochs: int = 50) -> int:
        """Active validators once the population settles."""
        return self.run(epochs)[-1].active_validators


def compare_policies(
    taxes: Sequence[float], seed: int = 0, epochs: int = 40
) -> List[Tuple[float, int, float]]:
    """Sweep the tax level: (tax, equilibrium validators, top-3 exposure).

    ``tax=0`` is the status quo the paper observed: nobody but Ripple Labs
    and a handful of stakeholders runs a validator.
    """
    results = []
    for tax in taxes:
        simulation = IncentiveSimulation(
            RewardPolicy(tax_per_transaction=tax), seed=seed
        )
        trajectory = simulation.run(epochs)
        final = trajectory[-1]
        results.append((tax, final.active_validators, final.takeover_top3))
    return results
