"""One RPCA round: deliberation, close, validation.

The round engine follows the protocol of the Ripple consensus white paper
([6] in the paper):

1. every participating validator enters with a *candidate set* of pending
   transactions it has seen;
2. validators exchange proposals over several iterations; at each iteration
   a validator keeps only transactions supported by at least an escalating
   threshold (50 %, 55 %, 60 %, 65 %) of the proposals delivered from its
   UNL;
3. each validator closes the resulting set into a ledger page and signs a
   validation for the page hash;
4. the page becomes *fully validated* when at least 80 % of the master UNL
   signed the same hash — these are the "valid pages" of Fig. 2.

Forked validators (private ledgers, the test-net) run their own instance:
they sign pages of their own chain every round; those hashes never match
the main ledger, reproducing the zero-valid-page bars of Fig. 2.  Lagging
validators frequently sign stale pages that likewise do not match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.consensus.faults import Behaviour, RoundFaults
from repro.consensus.network import NetworkModel
from repro.consensus.proposals import Validation
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator
from repro.ledger.hashing import ledger_page_hash, tx_set_hash

#: Escalating agreement thresholds of the deliberation phase.
DEFAULT_THRESHOLDS: Tuple[float, ...] = (0.50, 0.55, 0.60, 0.65)
#: Fraction of the master UNL that must sign a page for full validation.
DEFAULT_QUORUM = 0.80


def page_hash_for(sequence: int, parent_hash: bytes, close_time: int, tx_set: FrozenSet[bytes]) -> bytes:
    """Hash of the page a validator closes for ``tx_set``."""
    header = b"|".join(
        [
            sequence.to_bytes(8, "big"),
            parent_hash,
            close_time.to_bytes(8, "big"),
            tx_set_hash(sorted(tx_set)),
        ]
    )
    return ledger_page_hash(header)


@dataclass
class RoundOutcome:
    """Everything observable about one consensus round."""

    round_index: int
    sequence: int
    close_time: int
    validations: List[Validation] = field(default_factory=list)
    validated_hash: Optional[bytes] = None
    validated_tx_set: FrozenSet[bytes] = frozenset()
    agreement: float = 0.0
    participants: List[str] = field(default_factory=list)
    #: The page with the most master-UNL votes, even below quorum — what a
    #: degraded node seals when full validation is unreachable.
    plurality_hash: Optional[bytes] = None
    plurality_tx_set: FrozenSet[bytes] = frozenset()

    @property
    def validated(self) -> bool:
        return self.validated_hash is not None


def run_round(
    round_index: int,
    sequence: int,
    parent_hashes: Dict[int, bytes],
    close_time: int,
    tx_pool: FrozenSet[bytes],
    validators: Sequence[Validator],
    master_unl: UNL,
    network: NetworkModel,
    rng: np.random.Generator,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    quorum: float = DEFAULT_QUORUM,
    sign_pages: bool = False,
    faults: Optional[RoundFaults] = None,
) -> RoundOutcome:
    """Run one full consensus round and return its outcome.

    ``parent_hashes`` maps network id -> hash of that instance's current
    head; the function mutates nothing — the engine owns chain state.

    ``faults`` carries the chaos directives for this round (see
    :class:`repro.consensus.faults.RoundFaults`).  ``None`` runs the exact
    pre-chaos code path with the exact same randomness consumption.
    """
    outcome = RoundOutcome(
        round_index=round_index, sequence=sequence, close_time=close_time
    )
    candidates = validators
    if faults is not None and faults.crashed:
        candidates = [v for v in validators if v.name not in faults.crashed]
    participants = [v for v in candidates if v.participates(round_index, rng)]
    outcome.participants = [v.name for v in participants]
    if not participants:
        return outcome

    def behaviour_of(validator: Validator) -> Behaviour:
        if faults is not None:
            return faults.behaviour_of(validator)
        return validator.behaviour

    main = [v for v in participants if v.network_id == 0]

    # --- Deliberation on the main net ------------------------------------
    positions: Dict[str, Set[bytes]] = {}
    for validator in main:
        if behaviour_of(validator) is Behaviour.BYZANTINE:
            positions[validator.name] = validator.byzantine_position(tx_pool, rng)
        else:
            positions[validator.name] = validator.initial_position(tx_pool, rng)

    if main:
        if faults is not None and (faults.extra_loss or faults.blocked):
            delivered = network.delivery_array(
                main, rng, extra_loss=faults.extra_loss, blocked=faults.blocked
            )
        else:
            delivered = network.delivery_array(main, rng)
        stale = faults.stale if faults is not None else frozenset()
        #: Positions from the previous deliberation iteration, served in
        #: place of current ones for validators whose proposals are delayed
        #: or reordered on the wire.
        lagged_positions: Dict[str, Set[bytes]] = {}
        for threshold in thresholds:
            next_positions: Dict[str, Set[bytes]] = {}
            for j, listener in enumerate(main):
                heard = {
                    speaker.name: (
                        lagged_positions[speaker.name]
                        if speaker.name in stale
                        and speaker.name in lagged_positions
                        else positions[speaker.name]
                    )
                    for i, speaker in enumerate(main)
                    if delivered[i, j]
                }
                next_positions[listener.name] = listener.update_position(
                    positions[listener.name], heard, threshold
                )
            lagged_positions = positions
            positions = next_positions
            # Byzantine validators keep injecting disagreement.
            for validator in main:
                if behaviour_of(validator) is Behaviour.BYZANTINE:
                    positions[validator.name] = validator.byzantine_position(
                        tx_pool, rng
                    )

    # --- Close and validate -----------------------------------------------
    # A healthy validator only declares consensus when it actually heard
    # proposals from a quorum of its UNL (rippled's minimum consensus
    # percentage) — this is what halts a partitioned network.  Lagging,
    # offline, and byzantine validators sign anyway: desynchronized and
    # misbehaving servers emitting validations for pages nobody else has
    # are exactly the zero-valid bars of Fig. 2.
    heard_of: Dict[str, int] = {}
    if main:
        for j, listener in enumerate(main):
            heard = sum(
                1
                for i, speaker in enumerate(main)
                if delivered[i, j] and speaker.name in listener.unl
            )
            if listener.name in listener.unl:
                heard += 1  # a validator always hears itself
            heard_of[listener.name] = heard

    parent_main = parent_hashes.get(0, b"\x00" * 32)
    equivocating: FrozenSet[str] = (
        faults.equivocating if faults is not None else frozenset()
    )
    page_of: Dict[str, bytes] = {}
    tx_set_of: Dict[str, FrozenSet[bytes]] = {}
    for validator in main:
        if validator.name in equivocating:
            continue
        requires_quorum = behaviour_of(validator) is Behaviour.ACTIVE
        if requires_quorum and heard_of[validator.name] < quorum * len(validator.unl):
            continue
        final_set = frozenset(positions[validator.name])
        in_sync = rng.random() < validator.profile.sync_quality
        if in_sync:
            page = page_hash_for(sequence, parent_main, close_time, final_set)
        else:
            # A stale close: the validator is still working on an older
            # parent, so its page hash diverges from everyone else's.
            stale_parent = ledger_page_hash(
                b"stale|" + validator.name.encode() + sequence.to_bytes(8, "big")
            )
            page = page_hash_for(sequence, stale_parent, close_time, final_set)
        page_of[validator.name] = page
        tx_set_of[validator.name] = final_set
        outcome.validations.append(
            validator.make_validation(sequence, page, close_time, sign=sign_pages)
        )

    # Equivocators sign a validation for *every* distinct page their honest
    # peers closed this round, instead of closing one of their own — the
    # vote-splitting move of the cited safety analyses: each side of a
    # divided network sees the equivocators complete its own quorum.
    if equivocating:
        distinct_pages = sorted(set(page_of.values()))
        for validator in main:
            if validator.name not in equivocating:
                continue
            for page in distinct_pages:
                outcome.validations.append(
                    validator.make_validation(
                        sequence, page, close_time, sign=sign_pages
                    )
                )

    # Forked instances close their own page per round; everyone on the same
    # fork signs the same (non-main) hash.
    forks = [v for v in participants if v.network_id != 0]
    fork_pages: Dict[int, bytes] = {}
    for validator in forks:
        net = validator.network_id
        if net not in fork_pages:
            parent = parent_hashes.get(net, b"\x00" * 32)
            fork_pages[net] = page_hash_for(
                sequence, parent, close_time, frozenset({b"fork%d" % net})
            )
        outcome.validations.append(
            validator.make_validation(
                sequence, fork_pages[net], close_time, sign=sign_pages
            )
        )

    # --- Full validation check against the master UNL ----------------------
    votes: Dict[bytes, int] = {}
    for validation in outcome.validations:
        if validation.validator in master_unl:
            votes[validation.page_hash] = votes.get(validation.page_hash, 0) + 1
    if votes:
        best_hash, best_count = max(votes.items(), key=lambda kv: kv[1])
        outcome.agreement = best_count / len(master_unl)
        # The plurality page is recorded even below quorum: a degraded node
        # seals it (validated=False) when full validation is unreachable.
        outcome.plurality_hash = best_hash
        for name, page in page_of.items():
            if page == best_hash:
                outcome.plurality_tx_set = tx_set_of[name]
                break
        if best_count >= master_unl.quorum_size(quorum):
            outcome.validated_hash = best_hash
            outcome.validated_tx_set = outcome.plurality_tx_set
    return outcome
