"""Per-view validation and fork detection.

The engine's ``validated_hash`` is a *global* check against one master
UNL.  Real XRP safety is per-validator: validator ``v`` considers a page
fully validated once at least 80 % of **its own UNL** signed it.  With
fully overlapping UNLs the two notions coincide; once UNLs diverge they
do not — and the fork condition of Chase & MacBrough (*Analysis of the
XRP Ledger Consensus Protocol*) is exactly two validators whose views
validate *different* pages at the same sequence.

:func:`find_forks` replays a run's validation stream against each
distinct UNL in the roster and reports every sequence at which two or
more conflicting pages reached a view quorum.  Retried close attempts
are naturally separated: the engine advances the ledger sequence on
every protocol round, so validations from different attempts never share
a sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.consensus.proposals import Validation
from repro.consensus.unl import UNL
from repro.consensus.validator import Validator

#: Fraction of a view's UNL that must sign a page to validate it there.
DEFAULT_VIEW_QUORUM = 0.80


@dataclass(frozen=True)
class ForkEvent:
    """Two or more conflicting pages view-validated at one sequence."""

    sequence: int
    close_time: int
    #: The conflicting page hashes, sorted for determinism.
    pages: Tuple[bytes, ...]
    #: For each page (same order), the validator views that validated it.
    views: Tuple[Tuple[str, ...], ...]

    def describe(self) -> str:
        sides = "  vs  ".join(
            f"{page.hex()[:12]} [{len(view)} views]"
            for page, view in zip(self.pages, self.views)
        )
        return f"sequence {self.sequence}: {sides}"


def view_validated_pages(
    validations: Iterable[Validation],
    validators: Sequence[Validator],
    quorum: float = DEFAULT_VIEW_QUORUM,
) -> Dict[int, Dict[bytes, Tuple[str, ...]]]:
    """Per sequence: each page hash that reached a view quorum, with the
    (sorted) names of the validators in whose view it validated.

    Only main-net validations count — forked instances run their own
    chain and are not a safety violation of the main ledger.
    """
    unl_of: Dict[str, UNL] = {
        v.name: v.unl for v in validators if v.network_id == 0
    }
    signers: Dict[int, Dict[bytes, Set[str]]] = {}
    for validation in validations:
        if validation.network_id != 0:
            continue
        signers.setdefault(validation.sequence, {}).setdefault(
            validation.page_hash, set()
        ).add(validation.validator)

    validated: Dict[int, Dict[bytes, Tuple[str, ...]]] = {}
    for sequence, pages in signers.items():
        winners: Dict[bytes, Tuple[str, ...]] = {}
        for page, names in pages.items():
            views = tuple(
                sorted(
                    viewer
                    for viewer, unl in unl_of.items()
                    if len(names & unl.members) >= unl.quorum_size(quorum)
                )
            )
            if views:
                winners[page] = views
        if winners:
            validated[sequence] = winners
    return validated


def find_forks(
    validations: Iterable[Validation],
    validators: Sequence[Validator],
    quorum: float = DEFAULT_VIEW_QUORUM,
    close_times: Dict[int, int] = None,
) -> List[ForkEvent]:
    """Every sequence at which conflicting pages view-validated.

    ``close_times`` optionally maps sequence -> close time for the event
    records; absent entries fall back to the validations' sign time.
    """
    sign_times: Dict[int, int] = {}
    collected = list(validations)
    for validation in collected:
        sign_times.setdefault(validation.sequence, validation.sign_time)
    events: List[ForkEvent] = []
    for sequence, winners in sorted(
        view_validated_pages(collected, validators, quorum).items()
    ):
        if len(winners) < 2:
            continue
        pages = tuple(sorted(winners))
        close_time = (close_times or {}).get(
            sequence, sign_times.get(sequence, 0)
        )
        events.append(
            ForkEvent(
                sequence=sequence,
                close_time=close_time,
                pages=pages,
                views=tuple(winners[page] for page in pages),
            )
        )
    return events


def conflicting_validated_pages(
    validations: Iterable[Validation],
    master_unl: UNL,
    quorum: float = DEFAULT_VIEW_QUORUM,
) -> Dict[int, Set[bytes]]:
    """Sequences at which more than one page reached the *master* quorum.

    This is the single-UNL safety property the hypothesis suite asserts;
    under full UNL overlap it coincides with :func:`find_forks`.
    """
    support: Dict[int, Dict[bytes, Set[str]]] = {}
    for validation in validations:
        if validation.validator not in master_unl:
            continue
        support.setdefault(validation.sequence, {}).setdefault(
            validation.page_hash, set()
        ).add(validation.validator)
    needed = quorum * len(master_unl)
    conflicts: Dict[int, Set[bytes]] = {}
    for sequence, pages in support.items():
        winners = {
            page for page, names in pages.items() if len(names) >= needed
        }
        if len(winners) > 1:
            conflicts[sequence] = winners
    return conflicts


__all__ = [
    "DEFAULT_VIEW_QUORUM",
    "ForkEvent",
    "conflicting_validated_pages",
    "find_forks",
    "view_validated_pages",
]
