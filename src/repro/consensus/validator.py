"""The validator node: identity, UNL, behaviour, and signing.

A validator is identified the way the paper labels them: either by an
internet domain (``bougalis.net``, ``testnet.ripple.com``) or by the base58
form of its public key (``n9KDJn...Q7KhQ2``).  Each validator owns a Schnorr
key pair (derived deterministically from its name, so simulations are
reproducible) and a behaviour profile from :mod:`repro.consensus.faults`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set

import numpy as np

from repro.consensus.faults import Behaviour, ValidatorProfile, active
from repro.consensus.proposals import Validation
from repro.consensus.unl import UNL
from repro.ledger import crypto
from repro.ledger.accounts import base58_encode


def validator_key_id(name: str) -> str:
    """Ripple-style ``n...`` public-key label for an unidentified validator."""
    digest = hashlib.sha256(b"validator:" + name.encode()).digest()[:20]
    return "n9" + base58_encode(digest)[:10]


@dataclass
class Validator:
    """One consensus participant."""

    name: str
    unl: UNL
    profile: ValidatorProfile = field(default_factory=active)
    is_ripple_labs: bool = False
    _keypair: Optional[crypto.KeyPair] = field(default=None, repr=False)

    @property
    def keypair(self) -> crypto.KeyPair:
        """Lazy Schnorr key pair (deriving one costs a modular exponent)."""
        if self._keypair is None:
            self._keypair = crypto.KeyPair.from_seed(b"validator:" + self.name.encode())
        return self._keypair

    @property
    def network_id(self) -> int:
        return self.profile.network_id

    @property
    def behaviour(self) -> Behaviour:
        return self.profile.behaviour

    def participates(self, round_index: int, rng: np.random.Generator) -> bool:
        """Does this validator take part in the given round?"""
        if not self.profile.present_at(round_index):
            return False
        return rng.random() < self.profile.availability

    def initial_position(
        self, tx_pool: FrozenSet[bytes], rng: np.random.Generator
    ) -> Set[bytes]:
        """The candidate set this validator enters deliberation with.

        Healthy validators have seen (almost) every pending transaction;
        lagging ones miss many — the source of initial disagreement RPCA
        must resolve.
        """
        if self.profile.receive_probability is not None:
            receive_probability = self.profile.receive_probability
        elif self.behaviour is Behaviour.LAGGING:
            receive_probability = 0.6
        elif self.behaviour is Behaviour.OFFLINE:
            receive_probability = 0.5
        else:
            receive_probability = 0.98
        if not tx_pool:
            return set()
        pool = sorted(tx_pool)
        mask = rng.random(len(pool)) < receive_probability
        return {tx for tx, keep in zip(pool, mask) if keep}

    def update_position(
        self,
        position: Set[bytes],
        peer_positions: dict,
        threshold: float,
    ) -> Set[bytes]:
        """One deliberation iteration: keep transactions with enough support.

        ``peer_positions`` maps validator name -> candidate set, restricted
        to proposals actually delivered from this validator's UNL.  A
        transaction survives when at least ``threshold`` of those peers
        (self included) propose it.
        """
        voters = {name: pos for name, pos in peer_positions.items() if name in self.unl}
        voters[self.name] = position
        needed = threshold * len(voters)
        support: dict = {}
        for pos in voters.values():
            for tx in pos:
                support[tx] = support.get(tx, 0) + 1
        return {tx for tx, count in support.items() if count >= needed - 1e-9}

    def byzantine_position(
        self, tx_pool: FrozenSet[bytes], rng: np.random.Generator
    ) -> Set[bytes]:
        """A conflicting position: a random half of the pool."""
        pool = sorted(tx_pool)
        mask = rng.random(len(pool)) < 0.5
        return {tx for tx, keep in zip(pool, mask) if keep}

    def make_validation(
        self,
        sequence: int,
        page_hash: bytes,
        sign_time: int,
        sign: bool = False,
    ) -> Validation:
        """Emit (and optionally Schnorr-sign) a validation message."""
        validation = Validation(
            validator=self.name,
            sequence=sequence,
            page_hash=page_hash,
            sign_time=sign_time,
            network_id=self.network_id,
        )
        if sign:
            validation = validation.with_signature(self.keypair)
        return validation
