"""Consensus messages: proposals and validations.

RPCA runs in two phases per ledger close.  During *deliberation*, validators
exchange **proposals** — their current candidate transaction sets — over
several iterations with an escalating agreement threshold.  Once a validator
believes consensus is reached, it closes the ledger locally and broadcasts a
**validation**: a signed statement "page X is the ledger at sequence N".
The paper's measurement apparatus (Section IV) listens to exactly these
validation messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.ledger import crypto
from repro.ledger.hashing import PREFIX_PROPOSAL, PREFIX_VALIDATION, hash_with_prefix


@dataclass(frozen=True)
class Proposal:
    """A validator's position in one deliberation iteration."""

    validator: str
    ledger_sequence: int
    iteration: int
    tx_set: FrozenSet[bytes]

    def position_id(self) -> bytes:
        """Hash identifying the proposed transaction set."""
        return hash_with_prefix(PREFIX_PROPOSAL, b"".join(sorted(self.tx_set)))


@dataclass(frozen=True)
class Validation:
    """A signed assertion that ``page_hash`` closes ledger ``sequence``.

    ``network_id`` tags which ledger instance the signer was actually
    following (main net = 0; the test-net of the paper's Fig. 2 runs its own
    instance) — observers do *not* see this field; they discover it only by
    comparing page hashes against the main chain, as the paper did.
    """

    validator: str
    sequence: int
    page_hash: bytes
    sign_time: int
    network_id: int = 0
    signature: Optional[crypto.Signature] = None

    def signing_payload(self) -> bytes:
        return hash_with_prefix(
            PREFIX_VALIDATION,
            self.validator.encode()
            + self.sequence.to_bytes(8, "big")
            + self.page_hash
            + self.sign_time.to_bytes(8, "big"),
        )

    def with_signature(self, keypair: crypto.KeyPair) -> "Validation":
        return Validation(
            validator=self.validator,
            sequence=self.sequence,
            page_hash=self.page_hash,
            sign_time=self.sign_time,
            network_id=self.network_id,
            signature=keypair.sign(self.signing_payload()),
        )

    def verify(self, public_key: int) -> bool:
        if self.signature is None:
            return False
        return crypto.verify(public_key, self.signing_payload(), self.signature)
