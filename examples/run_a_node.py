#!/usr/bin/env python3
"""Run a full node: submission → consensus → application → public ledger.

This example drives the whole stack the way a Ripple client would:

1. start a :class:`repro.RippledNode` with five validators;
2. create accounts and trust lines via *signed transactions*;
3. submit payments (including one doomed to fail) and watch ledgers close;
4. read the public chain back — and point an arbitrage bot at the books,
   the §III-C "financial bot" the paper describes.

Run:  python examples/run_a_node.py
"""

from repro import RippledNode
from repro.ledger import (
    Amount,
    EUR,
    KeyPair,
    Offer,
    OfferCreate,
    Payment,
    TrustSet,
    USD,
    XRP,
    account_from_name,
)
from repro.payments import ArbitrageBot


def main() -> None:
    node = RippledNode(seed=42)

    # --- Accounts (funded directly in state; clients would buy XRP) --------
    people = {}
    keys = {}
    for name in ("alice", "bob", "gateway", "maker"):
        account = account_from_name(name, namespace="run-a-node")
        node.state.create_account(account, 10_000 * 10 ** 6)
        people[name] = account
        keys[name] = KeyPair.from_seed(f"run-a-node-{name}".encode())
    print("Node started; genesis ledger:", node.chain.head.sequence)

    # --- Trust lines via signed TrustSet transactions -----------------------
    def submit(tx, signer):
        tx.sign(keys[signer])
        return node.submit(tx)

    submit(TrustSet(account=people["alice"], sequence=1,
                    trustee=people["gateway"], limit=Amount.from_value(USD, 1_000)),
           "alice")
    submit(TrustSet(account=people["bob"], sequence=1,
                    trustee=people["gateway"], limit=Amount.from_value(USD, 1_000)),
           "bob")
    ledger = node.close_ledger()
    print(f"Ledger {ledger.page.sequence}: {ledger.success_count} trust lines set")

    # Gateway issues alice a deposit (a real payment transaction).
    node.state.apply_hop(
        people["gateway"], people["alice"], Amount.from_value(USD, 400)
    )

    # --- Payments: one good, one doomed --------------------------------------
    good = Payment(account=people["alice"], sequence=2,
                   destination=people["bob"], amount=Amount.from_value(USD, 120))
    doomed = Payment(account=people["bob"], sequence=2,
                     destination=people["alice"], amount=Amount.from_value(USD, 999))
    submit(good, "alice")
    submit(doomed, "bob")
    ledger = node.close_ledger()
    print(f"Ledger {ledger.page.sequence}: {ledger.success_count}/"
          f"{len(ledger.applied)} payments succeeded "
          f"(the failed one still claimed its fee: "
          f"{node.state.burned_fee_drops} drops burned so far)")
    for item in ledger.applied:
        print(f"  {item.transaction.TYPE_NAME} -> {item.code.value}")

    # --- The public record ----------------------------------------------------
    print("\nThe public chain now contains "
          f"{node.chain.transaction_count()} transactions across "
          f"{len(node.chain) - 1} closed ledgers — visible to anyone, forever.")

    # --- A §III-C arbitrage bot -----------------------------------------------
    node.state.place_offer(Offer(owner=people["maker"], sequence=50,
                                 taker_pays=Amount.from_value(XRP, 1_000),
                                 taker_gets=Amount.from_value(USD, 11)))
    node.state.place_offer(Offer(owner=people["maker"], sequence=51,
                                 taker_pays=Amount.from_value(USD, 10),
                                 taker_gets=Amount.from_value(XRP, 1_050)))
    bot = ArbitrageBot(node.state, people["alice"])
    opportunities = bot.find_opportunities([USD, EUR])
    print(f"\nArbitrage scan: {len(opportunities)} profitable cycle(s)")
    for quote in opportunities:
        print(f"  {quote.label()}  capacity ~{quote.capacity_xrp:,.0f} XRP")
    if opportunities:
        result = bot.execute(opportunities[0], xrp_budget=500)
        print(f"  executed: {result.xrp_in:,.1f} XRP in -> "
              f"{result.xrp_out:,.1f} XRP out "
              f"(profit {result.profit_xrp:,.2f} XRP)")
        print("  arbitrage is allowed by design — the paper's financial bot.")


if __name__ == "__main__":
    main()
