#!/usr/bin/env python3
"""Quickstart: the Ripple credit network in fifteen minutes.

Builds a miniature Ripple economy by hand — a gateway, three users, a
market maker — and walks through the mechanics the paper studies:

1. trust lines and deposits (IOU issuance),
2. a same-currency payment rippling through the gateway,
3. a cross-currency payment bridged by a market-maker offer,
4. a consensus round sealing the transactions into the ledger.

Run:  python examples/quickstart.py
"""

from repro.consensus import ConsensusEngine, UNL, Validator, active
from repro.ledger import (
    Amount,
    EUR,
    KeyPair,
    LedgerChain,
    LedgerState,
    Offer,
    Payment,
    USD,
    account_from_name,
)
from repro.payments import PaymentEngine


def main() -> None:
    # --- 1. Accounts, trust lines, deposits --------------------------------
    state = LedgerState()
    alice = account_from_name("alice", namespace="quickstart")
    bob = account_from_name("bob", namespace="quickstart")
    carla = account_from_name("carla", namespace="quickstart")
    gateway = account_from_name("Gateway GmbH", namespace="quickstart")
    maker = account_from_name("MarketMaker Inc", namespace="quickstart")

    for account in (alice, bob, carla, gateway, maker):
        state.create_account(account, 1_000 * 10 ** 6)  # 1000 XRP each

    print("Accounts (note the r... addresses):")
    for name, account in [("alice", alice), ("bob", bob), ("gateway", gateway)]:
        print(f"  {name:8s} {account.address}")

    # Users trust the gateway: "I accept up to 1000 USD of its IOUs".
    state.set_trust(alice, gateway, Amount.from_value(USD, 1_000))
    state.set_trust(bob, gateway, Amount.from_value(USD, 1_000))
    state.set_trust(carla, gateway, Amount.from_value(EUR, 1_000))
    # The market maker keeps working balances at the gateway.
    state.set_trust(maker, gateway, Amount.from_value(USD, 100_000))
    state.set_trust(maker, gateway, Amount.from_value(EUR, 100_000))

    # Alice wires $500 to the gateway off-ledger; on-ledger the gateway now
    # owes her 500 USD (a deposit = IOU issuance).
    state.apply_hop(gateway, alice, Amount.from_value(USD, 500))
    state.apply_hop(gateway, maker, Amount.from_value(EUR, 50_000))
    print(f"\nAlice's USD balance after deposit: {state.iou_balance(alice, USD)}")

    # --- 2. A same-currency payment -----------------------------------------
    engine = PaymentEngine(state)
    result = engine.submit(alice, bob, Amount.from_value(USD, 120))
    print(f"\nalice -> bob, 120 USD: success={result.success}")
    print(f"  path: {' -> '.join(a.short() for a in result.outcome.paths[0])}")
    print(f"  intermediate hops: {result.intermediate_hops}")
    print(f"  bob now holds: {state.iou_balance(bob, USD)}")

    # --- 3. A cross-currency payment via a market-maker offer ---------------
    state.place_offer(
        Offer(
            owner=maker,
            sequence=1,
            taker_pays=Amount.from_value(USD, 11_000),
            taker_gets=Amount.from_value(EUR, 10_000),
        )
    )
    result = engine.submit(
        alice, carla, Amount.from_value(EUR, 100), send_max=Amount.from_value(USD, 200)
    )
    print(f"\nalice -> carla, 100 EUR paid in USD: success={result.success}")
    print(f"  bridge: {result.outcome.bridge_account.short()} (the market maker)")
    print(f"  carla now holds: {state.iou_balance(carla, EUR)}")
    print(f"  alice's USD left: {state.iou_balance(alice, USD)}")

    # --- 4. Consensus seals a signed transaction into the ledger ------------
    tx = Payment(
        account=alice,
        sequence=state.next_sequence(alice),
        destination=bob,
        amount=Amount.from_value(USD, 10),
    )
    tx.sign(KeyPair.from_seed(b"alice-quickstart"))
    assert tx.verify_signature()

    names = [f"validator-{i}" for i in range(5)]
    unl = UNL.of(names)
    validators = [Validator(n, unl, active(availability=1.0)) for n in names]
    consensus = ConsensusEngine(validators, master_unl=unl, seed=1, keep_outcomes=True)
    report = consensus.run(1, tx_supplier=lambda _round, _rng: frozenset({tx.tx_hash}))

    chain = LedgerChain.with_genesis()
    outcome = report.outcomes[0]
    page = chain.seal([tx], close_time=5)
    print(f"\nConsensus round: validated={outcome.validated}, "
          f"agreement={outcome.agreement:.0%}")
    print(f"Ledger page {page.sequence} sealed, hash {page.page_hash.hex()[:16]}...")
    print(f"Transaction {tx.tx_hash.hex()[:16]}... is now public, forever —")
    print("which is exactly what Section V of the paper exploits.")


if __name__ == "__main__":
    main()
