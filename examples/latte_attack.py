#!/usr/bin/env python3
"""The latte attack: de-anonymize a Ripple payment from a glance.

Section V of the paper: Bob buys a latte; Alice, in line behind him, sees
the bar's Ripple address, the amount, the currency, and the rough time.
This script plays Alice over a synthetic three-year Ripple history:

1. pick a random payment (Bob's latte);
2. observe it at several resolutions — exact, minute-level, and a vague
   "sometime that day, roughly that amount";
3. query the public ledger for matching payments;
4. when one sender matches, print Bob's entire financial life.

Run:  python examples/latte_attack.py
"""

import numpy as np

from repro.analysis import TransactionDataset
from repro.core import (
    Deanonymizer,
    FeatureList,
    Observation,
    SideChannelAttack,
    net_worth_eur,
)
from repro.core.resolution import AmountResolution, TimeResolution
from repro.ledger.transactions import from_ripple_time
from repro.synthetic import generate_history, small_config


def main() -> None:
    print("Generating three years of synthetic Ripple history...")
    history = generate_history(small_config(seed=99, n_payments=6_000))
    dataset = TransactionDataset.from_records(history.records)
    attack = SideChannelAttack(dataset, history.state)

    # Bob's latte: a random fiat payment from the history.
    rng = np.random.default_rng(4)
    fiat_rows = np.flatnonzero(dataset.kinds == "fiat")
    row = int(rng.choice(fiat_rows))
    truth = dataset.accounts[int(dataset.sender_ids[row])]
    observation = Observation(
        destination=dataset.accounts[int(dataset.destination_ids[row])],
        currency=dataset.currency_code(int(dataset.currency_ids[row])),
        amount=float(dataset.amounts[row]),
        timestamp=int(dataset.timestamps[row]),
    )
    when = from_ripple_time(observation.timestamp)
    print(f"\nAlice overhears: {observation.amount:g} {observation.currency} "
          f"to {observation.destination.short()} at {when:%Y-%m-%d %H:%M:%S}")

    scenarios = [
        ("exact observation", FeatureList()),
        ("minute-level time", FeatureList(AmountResolution.HIGH, TimeResolution.MINUTES)),
        ("hour + rounded amount", FeatureList(AmountResolution.AVERAGE, TimeResolution.HOURS)),
        ("vague: day + coarse amount", FeatureList(AmountResolution.LOW, TimeResolution.DAYS)),
        ("no timestamp at all", FeatureList(AmountResolution.MAX, TimeResolution.NONE)),
    ]
    final = None
    for label, feature_list in scenarios:
        result = attack.run(observation, feature_list)
        verdict = (
            f"IDENTIFIED {result.sender.short()}"
            if result.succeeded
            else f"{len(result.candidates)} candidate senders"
        )
        correct = " (correct!)" if result.succeeded and result.sender == truth else ""
        print(f"  {label:28s} -> {verdict}{correct}")
        if result.succeeded and final is None:
            final = result

    if final is None:
        print("\nNo scenario pinned Bob down — try another payment.")
        return

    profile = final.profile
    print(f"\n=== Bob's dossier ({final.sender.address}) ===")
    print(f"  payments sent / received : {profile.payments_sent} / {profile.payments_received}")
    print(f"  total spent (EUR equiv.) : {profile.total_spent_eur:,.2f}")
    print(f"  avg monthly income (EUR) : {profile.average_monthly_income_eur:,.2f}")
    print(f"  avg monthly spend (EUR)  : {profile.average_monthly_spending_eur:,.2f}")
    print(f"  net worth (EUR equiv.)   : {net_worth_eur(profile):,.2f}")
    print("  where Bob shops (top merchants):")
    for merchant, count in profile.top_merchants[:5]:
        print(f"    {history.cast.label(merchant):30s} {count} payments")
    print("  whom Bob trusts (declared trust lines):")
    for trustee, currency, limit in profile.trusted_parties[:5]:
        print(f"    {history.cast.label(trustee):30s} up to {limit:g} {currency}")

    # How typical is this? The paper's headline: >99.8 % of payments are
    # uniquely identifiable at full resolution.
    ig = Deanonymizer(dataset).information_gain(FeatureList())
    print(f"\nAcross the whole history, a full-resolution observation uniquely")
    print(f"identifies {ig.percent:.2f}% of payments (paper: 99.83%).")


if __name__ == "__main__":
    main()
