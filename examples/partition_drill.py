#!/usr/bin/env python3
"""Fault drills: replay the published attack schedules against a live node.

Runs the two headline scenarios from the consensus-robustness literature
against a resilient :class:`repro.node.RippledNode`:

* the overlapping-UNL partition of Chase & MacBrough's analysis — the
  network splits into two halves that still share most of the master UNL,
  neither side reaches the 80 % validation quorum, and the node has to
  retry, degrade, and recover after the heal;
* the adversarial message-delay schedule of Amores-Sesar et al. — stale
  and suppressed proposals stall deliberation without ever partitioning
  the network.

Both drills emit the Fig. 2-style per-validator health table plus the
degradation counters (retries, degraded closes, stream reconnects) that
show *how* consensus survived.

Run:  python examples/partition_drill.py
"""

from repro.chaos import run_drill
from repro.chaos.report import render_chaos_report

ROUNDS = 240


def main() -> None:
    for plan in ("partition", "delay"):
        report = run_drill(plan, seed=3, rounds=ROUNDS)
        print(render_chaos_report(report))
        print()
        survived = report.validated_closes + report.degraded_closes
        print(
            f"--> {plan}: sealed {survived}/{report.closes_attempted} closes "
            f"({report.round_retries} retries, "
            f"{report.degraded_closes} degraded); "
            f"availability {report.availability:.1%}\n"
        )
    print(
        "Consensus bent but did not break: every injected schedule left the\n"
        "node with one agreed chain — the robustness claim of Section IV,\n"
        "exercised under the worst published fault schedules."
    )


if __name__ == "__main__":
    main()
