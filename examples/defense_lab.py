#!/usr/bin/env python3
"""Defense lab: can Bob protect himself?

The paper ends Section V noting that the Bitcoin remedy (fresh wallets per
transaction) "is difficult to achieve in Ripple due to its underlying trust
backbone".  This script evaluates the candidate countermeasures
quantitatively on a synthetic history:

* amount padding — pay coarse round numbers, eat the overpayment;
* settlement batching — publish payments in windows, eat the latency;
* per-payment wallets — fresh pseudonyms, eat the trust bootstrapping.

It also shows why half-measures fail: even when a single payment is
matched, what matters is the *history exposure* — how much more of your
financial life the match drags into the open.

Run:  python examples/defense_lab.py
"""

from repro.analysis import TransactionDataset
from repro.core import standard_defense_suite
from repro.core.clustering import activation_clusters, expand_dossier
from repro.core.resolution import (
    FIGURE3_FEATURE_LISTS,
    AmountResolution,
    FeatureList,
    TimeResolution,
)
from repro.synthetic import generate_history, small_config


def main() -> None:
    print("Generating the synthetic economy...")
    history = generate_history(small_config(seed=55, n_payments=6_000))
    dataset = TransactionDataset.from_records(history.records)

    feature_lists = [
        FeatureList(),  # full-resolution observer
        FeatureList(AmountResolution.AVERAGE, TimeResolution.HOURS),  # casual
    ]
    print("\nEvaluating the three countermeasures "
          "(IG = % of payments uniquely fingerprinted):\n")
    reports = standard_defense_suite(dataset, feature_lists=feature_lists)
    for report in reports:
        print(f"=== {report.name} ===")
        for feature_list in feature_lists:
            label = feature_list.label()
            print(f"  {label:24s} IG {report.ig_before[label]:6.2f}% "
                  f"-> {report.ig_after[label]:6.2f}%")
        for cost, value in report.costs.items():
            print(f"  cost: {cost} = {value:,.2f}")
        print()

    print("Takeaways:")
    print("  * Padding and batching shave the fingerprint but, at ledger scale,")
    print("    the remaining features still single most payments out.")
    print("  * Fresh wallets zero the *history exposure* — the match reveals a")
    print("    throwaway — but require a trust line per payment: the bootstrap")
    print("    cost the paper predicted makes them impractical.")

    # And the flip side: the attacker composes linking heuristics.
    clusters = activation_clusters(history.records, min_size=3)
    if clusters:
        funder, members = clusters[0]
        print(f"\nAttacker's counter: wallet linking. "
              f"{history.cast.label(funder)} activated {len(members)} wallets;")
        linked = expand_dossier(dataset, members[0], history.records)
        print(f"identifying any one of them exposes {len(linked)} linked accounts.")


if __name__ == "__main__":
    main()
