#!/usr/bin/env python3
"""What if the Market Makers vanished?  The Table II counterfactual.

Generates a synthetic economy, snapshots it at the paper's Feb 2015 date,
then runs a one-wave market-maker outage cascade: wave 0 replays every
post-snapshot payment on the intact network (the control), wave 1 with
all market makers banned from relaying and their offers removed — the
same library path ``repro cascade`` drives, where Table II is the final
point on the collapse curve.
Also reports how concentrated offer placement is (the 50/75/87 % finding).

Run:  python examples/market_maker_outage.py
"""

from repro.analysis import offer_concentration
from repro.api import render_table2
from repro.chaos.cascade import run_cascade
from repro.synthetic import generate_history, small_config


def main() -> None:
    print("Generating the synthetic economy...")
    history = generate_history(small_config(seed=31, n_payments=6_000))

    concentration = offer_concentration(history.offer_records)
    print(f"\nOffer placement concentration "
          f"({concentration.total_offers} offers; paper: ~90M):")
    for top_k, share in sorted(concentration.shares.items()):
        paper = {10: 0.50, 50: 0.75, 100: 0.87}.get(top_k)
        note = f" (paper: {paper:.0%})" if paper else ""
        print(f"  top {top_k:3d} makers place {share:.1%} of offers{note}")

    # A one-wave cascade is exactly the paper's experiment: removing every
    # maker's offers empties the books, so wave 1 reproduces the
    # remove-the-market-makers replay bit for bit.
    cascade = run_cascade(history, kind="outage", waves=1, pairs=0)
    control = cascade.waves[0].delivery
    outage = cascade.waves[1].delivery

    print("\nControl replay — makers intact:")
    print(render_table2(control))

    print("\nCounterfactual replay — makers and their offers removed:")
    print(render_table2(outage))

    print("\nPaper's Table II: cross-currency 0%, single-currency 36.1%, "
          "total 11.2%.")
    lost = control.total.delivered - outage.total.delivered
    print(f"Here: removing {len(history.cast.market_makers)} maker accounts "
          f"kills {lost} of {control.total.delivered} deliverable payments "
          f"({lost / max(1, control.total.delivered):.0%}).")
    print("Market makers are not a convenience — they are the connective "
          "tissue of the exchange.")


if __name__ == "__main__":
    main()
