#!/usr/bin/env python3
"""Consensus monitoring: the paper's Section IV measurement, end to end.

Stands up the December 2015 validator population, attaches a rippled-style
validation-stream server and a collector, runs a scaled collection period,
and cross-references every captured signature against the main ledger —
reproducing the Fig. 2 total/valid bars and the robustness findings.

Run:  python examples/consensus_monitor.py
"""

from repro.analysis.validators import classify, summarize
from repro.core.robustness import RobustnessStudy
from repro.stream.periods import PERIODS

#: 1/600 of a two-week period ≈ 400 consensus rounds per period.
SCALE = 1.0 / 600.0


def main() -> None:
    print("Running the three collection periods (scaled)...\n")
    study = RobustnessStudy.run(PERIODS, scale=SCALE, seed=23)

    for report in study.reports:
        summary = summarize(report)
        classes = classify(report)
        print(f"=== {report.period.label} ===")
        print(f"  simulated rounds          : {report.rounds} "
              f"(x{1 / report.scale:.0f} for the full two weeks)")
        print(f"  validated rounds          : {report.rounds_validated} "
              f"({report.availability:.1%} availability)")
        print(f"  validators observed       : {summary.observed_non_ripple} + R1-R5")
        print(f"  active contributors       : {summary.active_non_ripple} non-Ripple "
              f"(paper: {dict(dec2015=3, jul2016=10, nov2016=8)[report.period.key]})")
        print(f"  zero-valid validators     : {summary.zero_valid}")
        print("  busiest validators (total / valid pages):")
        top = sorted(report.observations, key=lambda o: -o.valid_pages)[:8]
        for obs in top:
            tag = " [Ripple Labs]" if obs.is_ripple_labs else ""
            print(f"    {obs.name:26s} {obs.total_pages:6d} / {obs.valid_pages:6d}{tag}")
        struggling = ", ".join(classes["struggling"][:4]) or "-"
        print(f"  struggling (stale pages)  : {struggling}")
        print()

    print("=== Cross-period findings (Section IV) ===")
    print(f"  distinct validators seen  : {study.validators_seen_total()} (paper: 70)")
    persistent = study.persistent_active()
    print(f"  active in all 3 periods   : {len(persistent)} (paper: 9)")
    print(f"    {', '.join(persistent)}")
    exposure = study.takeover_exposure("nov2016")
    print("  takeover exposure, Nov'16 (share of valid signatures):")
    for top_k, share in exposure.items():
        print(f"    {top_k:5s}: {share:.1%}")
    print("\nThe consensus of the entire system rests on a handful of servers —")
    print("hijacking them would endanger the whole network (the paper's concern).")


if __name__ == "__main__":
    main()
