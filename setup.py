"""Setup shim for environments whose pip cannot build editable wheels.

``pip install -e .`` requires the ``wheel`` package (absent offline); this
shim lets ``python setup.py develop`` provide the same editable install.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
